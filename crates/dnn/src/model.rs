//! Sequential models: the network container used everywhere else.

use crate::layers::{Layer, ParamSet};
use crate::tensor::Tensor;
use std::fmt;

/// A sequential feed-forward network.
#[derive(Clone, Debug)]
pub struct Model {
    layers: Vec<Layer>,
}

impl Model {
    /// Creates a model from a layer stack.
    pub fn new(layers: Vec<Layer>) -> Self {
        Model { layers }
    }

    /// The layers, immutably.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The layers, mutably (used by GENESIS to swap compressed layers in).
    pub fn layers_mut(&mut self) -> &mut Vec<Layer> {
        &mut self.layers
    }

    /// Forward pass through all layers.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut t = x.clone();
        for l in &mut self.layers {
            t = l.forward(&t);
        }
        t
    }

    /// Backward pass; `g` is the loss gradient at the output.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, g: &Tensor) -> Tensor {
        let mut grad = g.clone();
        for l in self.layers.iter_mut().rev() {
            grad = l.backward(&grad);
        }
        grad
    }

    /// Classification: argmax of the logits.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn predict(&mut self, x: &Tensor) -> usize {
        self.forward(x).argmax()
    }

    /// Visits all parameter tensors in a stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(ParamSet<'_>)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Output shape for a given input shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        let mut s = input.to_vec();
        for l in &self.layers {
            s = l.output_shape(&s);
        }
        s
    }

    /// Total multiply-accumulates per inference (paper Fig. 4 x-axis).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn macs(&self, input: &[usize]) -> u64 {
        let mut s = input.to_vec();
        let mut total = 0;
        for l in &self.layers {
            total += l.macs(&s);
            s = l.output_shape(&s);
        }
        total
    }

    /// Total nonzero parameters (the memory-feasibility metric).
    pub fn nonzero_params(&self) -> u64 {
        self.layers.iter().map(Layer::nonzero_params).sum()
    }

    /// Total dense parameter slots.
    pub fn dense_params(&self) -> u64 {
        self.layers.iter().map(Layer::dense_params).sum()
    }

    /// One-line architecture summary.
    pub fn describe(&self) -> String {
        self.layers
            .iter()
            .map(Layer::describe)
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    fn tiny_cnn() -> Model {
        let mut r = rng();
        Model::new(vec![
            Layer::conv2d(4, 1, 3, 3, &mut r),
            Layer::relu(),
            Layer::maxpool(2),
            Layer::flatten(),
            Layer::dense(4 * 3 * 3, 5, &mut r),
        ])
    }

    #[test]
    fn forward_produces_logits() {
        let mut m = tiny_cnn();
        let x = Tensor::uniform(vec![1, 8, 8], 1.0, &mut rng());
        let y = m.forward(&x);
        assert_eq!(y.shape(), &[5]);
        let p = m.predict(&x);
        assert!(p < 5);
    }

    #[test]
    fn output_shape_matches_forward() {
        let mut m = tiny_cnn();
        let shape = m.output_shape(&[1, 8, 8]);
        let y = m.forward(&Tensor::zeros(vec![1, 8, 8]));
        assert_eq!(shape, y.shape());
    }

    #[test]
    fn macs_accumulate_across_layers() {
        let m = tiny_cnn();
        // conv: 4*1*3*3 nnz (all nonzero after init) * 6*6 positions.
        // dense: 36*5 weights.
        let expected = 4 * 9 * 36 + 36 * 5;
        assert_eq!(m.macs(&[1, 8, 8]), expected as u64);
    }

    #[test]
    fn param_counts() {
        let m = tiny_cnn();
        assert_eq!(m.dense_params(), (4 * 9 + 4) + (36 * 5 + 5));
        assert!(m.nonzero_params() <= m.dense_params());
    }

    #[test]
    fn zero_grad_clears() {
        let mut m = tiny_cnn();
        let x = Tensor::uniform(vec![1, 8, 8], 1.0, &mut rng());
        let y = m.forward(&x);
        m.backward(&Tensor::from_vec(vec![5], vec![1.0; 5]));
        let mut any_nonzero = false;
        m.visit_params(&mut |p| any_nonzero |= p.grads.iter().any(|&g| g != 0.0));
        assert!(any_nonzero, "backward should have produced gradients");
        m.zero_grad();
        m.visit_params(&mut |p| assert!(p.grads.iter().all(|&g| g == 0.0)));
        let _ = y;
    }

    #[test]
    fn describe_chains_layers() {
        let m = tiny_cnn();
        let d = m.describe();
        assert!(d.contains("conv 4x1x3x3"));
        assert!(d.contains("->"));
        assert_eq!(format!("{m}"), d);
    }
}
