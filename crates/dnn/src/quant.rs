//! Post-training quantization to the deployable Q1.15 form.
//!
//! The MSP430 kernels (and LEA) compute in 16-bit fixed point. Trained
//! `f32` weights can exceed `[-1, 1)`, so each weight tensor is scaled
//! down by a power of two, and the accumulated result is scaled back with
//! a bit shift — the very shifts the paper laments LEA cannot do in
//! hardware ("LEA does not have a left-shift operation", §9.2), which
//! TAILS therefore performs in software.
//!
//! Activations are kept in range by per-layer power-of-two output scaling
//! chosen from a calibration pass. All scalings are uniform within a
//! layer, so the final argmax (classification) is unaffected.
//!
//! The resulting [`QModel`] is the single source of truth that every
//! implementation in the evaluation — naïve baseline, tiled Alpaca, SONIC,
//! TAILS — deploys and executes.

use crate::model::Model;
use crate::tensor::Tensor;
use fxp::{Accum, Q15};

/// Quantized layer kinds.
#[derive(Clone, Debug)]
pub enum QLayer {
    /// Convolution (dense storage always present; sparse taps when pruned).
    Conv(QConv),
    /// Fully-connected (dense storage always present; CSR when pruned).
    Dense(QDense),
    /// Max pooling.
    Pool(QPool),
    /// ReLU.
    Relu,
    /// Flatten (shape bookkeeping only).
    Flatten,
}

/// A quantized convolution.
#[derive(Clone, Debug)]
pub struct QConv {
    /// `[F, C, KH, KW]`.
    pub dims: [usize; 4],
    /// Dense scaled weights, length `F*C*KH*KW` (zeros where pruned).
    pub weights: Vec<Q15>,
    /// Scaled biases, length `F`.
    pub bias: Vec<Q15>,
    /// Net bit shift applied to each accumulated output (positive =
    /// left/saturating, negative = right).
    pub shift: i32,
    /// Sparse tap lists when the layer is deployed sparse.
    pub sparse: Option<QSparseConv>,
}

/// One nonzero tap of a quantized sparse convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QTap {
    /// Input channel.
    pub c: u16,
    /// Kernel row.
    pub ky: u16,
    /// Kernel column.
    pub kx: u16,
    /// Scaled tap value.
    pub w: Q15,
}

/// Per-filter nonzero taps of a pruned convolution.
#[derive(Clone, Debug)]
pub struct QSparseConv {
    /// `taps[f]` lists filter `f`'s nonzeros in (c, ky, kx) order.
    pub taps: Vec<Vec<QTap>>,
}

/// A quantized fully-connected layer.
#[derive(Clone, Debug)]
pub struct QDense {
    /// `[out, in]`.
    pub dims: [usize; 2],
    /// Dense scaled weights, length `out*in` (zeros where pruned).
    pub weights: Vec<Q15>,
    /// Scaled biases, length `out`.
    pub bias: Vec<Q15>,
    /// Net bit shift applied to each accumulated output.
    pub shift: i32,
    /// CSR form when the layer is deployed sparse.
    pub sparse: Option<QCsr>,
}

/// Quantized CSR matrix.
#[derive(Clone, Debug)]
pub struct QCsr {
    /// Row start offsets (length `out + 1`).
    pub row_ptr: Vec<u32>,
    /// Column of each nonzero.
    pub col: Vec<u32>,
    /// Scaled value of each nonzero.
    pub val: Vec<Q15>,
}

/// Derives the canonical per-filter sparse tap lists from dense conv
/// weights (`dims = [F, C, KH, KW]`), dropping exact zeros in
/// `(c, ky, kx)` order. The single source of truth shared by
/// [`quantize`], the equivalence proptests, and the kernel benches.
///
/// # Panics
///
/// Panics if `weights` does not match `dims`.
pub fn sparse_taps_from_weights(dims: [usize; 4], weights: &[Q15]) -> QSparseConv {
    let (nf, nc, kh, kw) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(weights.len(), nf * nc * kh * kw, "weight length mismatch");
    let mut taps = Vec::with_capacity(nf);
    for f in 0..nf {
        let mut list = Vec::new();
        for cc in 0..nc {
            for ky in 0..kh {
                for kx in 0..kw {
                    let w = weights[((f * nc + cc) * kh + ky) * kw + kx];
                    if !w.is_zero() {
                        list.push(QTap {
                            c: cc as u16,
                            ky: ky as u16,
                            kx: kx as u16,
                            w,
                        });
                    }
                }
            }
        }
        taps.push(list);
    }
    QSparseConv { taps }
}

/// Derives the canonical CSR form from dense fully-connected weights
/// (`dims = [out, in]`), dropping exact zeros row by row. The single
/// source of truth shared by [`quantize`], the equivalence proptests,
/// and the kernel benches.
///
/// # Panics
///
/// Panics if `weights` does not match `dims`.
pub fn csr_from_weights(dims: [usize; 2], weights: &[Q15]) -> QCsr {
    assert_eq!(weights.len(), dims[0] * dims[1], "weight length mismatch");
    let mut row_ptr = Vec::with_capacity(dims[0] + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    row_ptr.push(0u32);
    for r in 0..dims[0] {
        for c in 0..dims[1] {
            let w = weights[r * dims[1] + c];
            if !w.is_zero() {
                col.push(c as u32);
                val.push(w);
            }
        }
        row_ptr.push(col.len() as u32);
    }
    QCsr { row_ptr, col, val }
}

/// Quantized max pooling.
#[derive(Clone, Copy, Debug)]
pub struct QPool {
    /// Window height (and vertical stride).
    pub kh: usize,
    /// Window width (and horizontal stride).
    pub kw: usize,
}

/// Layers deployed sparse when density falls below this fraction.
pub const SPARSE_DENSITY_THRESHOLD: f64 = 0.5;

/// Calibration headroom: activations are scaled to stay below this
/// magnitude.
const HEADROOM: f32 = 0.95;

/// A quantized, deployable model.
#[derive(Clone, Debug)]
pub struct QModel {
    /// Input tensor shape.
    pub input_shape: Vec<usize>,
    /// The quantized layer stack.
    pub layers: Vec<QLayer>,
}

impl QLayer {
    /// Output shape for a given input shape (mirrors
    /// [`crate::layers::Layer::output_shape`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        match self {
            QLayer::Conv(c) => {
                assert_eq!(input.len(), 3, "conv input must be rank-3");
                assert_eq!(input[0], c.dims[1], "conv channel mismatch");
                vec![
                    c.dims[0],
                    input[1] - c.dims[2] + 1,
                    input[2] - c.dims[3] + 1,
                ]
            }
            QLayer::Dense(d) => {
                let n: usize = input.iter().product();
                assert_eq!(n, d.dims[1], "dense input size mismatch");
                vec![d.dims[0]]
            }
            QLayer::Pool(p) => {
                assert_eq!(input.len(), 3, "pool input must be rank-3");
                vec![input[0], input[1] / p.kh, input[2] / p.kw]
            }
            QLayer::Relu | QLayer::Flatten => {
                if matches!(self, QLayer::Flatten) {
                    vec![input.iter().product()]
                } else {
                    input.to_vec()
                }
            }
        }
    }

    /// `true` when the layer is deployed in a sparse representation.
    pub fn is_sparse(&self) -> bool {
        match self {
            QLayer::Conv(c) => c.sparse.is_some(),
            QLayer::Dense(d) => d.sparse.is_some(),
            _ => false,
        }
    }

    /// FRAM words needed to store this layer's parameters in its deployed
    /// representation (16-bit words; sparse entries cost a value word plus
    /// a packed index word).
    pub fn param_words(&self) -> u64 {
        match self {
            QLayer::Conv(c) => {
                let w = match &c.sparse {
                    Some(s) => s.taps.iter().map(|t| 2 * t.len() as u64 + 1).sum::<u64>(),
                    None => c.weights.len() as u64,
                };
                w + c.bias.len() as u64
            }
            QLayer::Dense(d) => {
                let w = match &d.sparse {
                    Some(s) => (2 * s.val.len() + s.row_ptr.len()) as u64,
                    None => d.weights.len() as u64,
                };
                w + d.bias.len() as u64
            }
            _ => 0,
        }
    }
}

/// Applies a net bit shift to an accumulated value and converts to Q1.15.
///
/// This is the *canonical finishing step* shared by every kernel
/// implementation (host reference, baseline, tiled, SONIC, TAILS), so all
/// of them agree on arithmetic semantics.
#[inline]
pub fn finish_acc(acc: Accum, shift: i32, bias: Q15) -> Q15 {
    let q = acc.to_q15();
    let shifted = if shift >= 0 {
        q.saturating_shl(shift as u32)
    } else {
        q.shr((-shift) as u32)
    };
    shifted.saturating_add(bias)
}

fn pow2_shift_for(max_abs: f32) -> i32 {
    // Smallest s >= 0 with max_abs / 2^s < 1.0.
    let mut s = 0;
    let mut m = max_abs;
    while m >= 1.0 && s < 15 {
        m /= 2.0;
        s += 1;
    }
    s
}

fn quantize_scaled(data: &[f32], down_shift: i32) -> Vec<Q15> {
    let scale = (2.0f32).powi(-down_shift);
    data.iter().map(|&v| Q15::from_f32(v * scale)).collect()
}

/// Quantizes a trained model for deployment.
///
/// `calib` supplies a few representative inputs used to choose per-layer
/// activation scales; with an empty slice, activations are assumed to stay
/// in `[-1, 1)` (risking saturation).
///
/// # Panics
///
/// Panics if the model contains shapes inconsistent with `input_shape`.
pub fn quantize(model: &mut Model, input_shape: &[usize], calib: &[Tensor]) -> QModel {
    // 1. Calibration: per-layer max |output| in the *real* (float) domain.
    let n_layers = model.layers().len();
    let mut max_out = vec![0.0f32; n_layers];
    for x in calib {
        let mut t = x.clone();
        for (li, l) in model.layers_mut().iter_mut().enumerate() {
            t = l.forward(&t);
            max_out[li] = max_out[li].max(t.max_abs());
        }
    }

    // 2. Walk layers, tracking the activation scale exponent `a` (<= 0):
    //    quantized activations = real · 2^a.
    let mut a: i32 = 0;
    let mut layers = Vec::with_capacity(n_layers);
    for (li, l) in model.layers().iter().enumerate() {
        match l {
            crate::layers::Layer::Dense(d) => {
                let ws = pow2_shift_for(d.w.max_abs());
                let a_out = -(pow2_shift_for(max_out[li] / HEADROOM));
                let shift = a_out - a + ws;
                let weights = quantize_scaled(d.w.data(), ws);
                let bias_scale = (2.0f32).powi(a_out);
                let bias =
                    d.b.data()
                        .iter()
                        .map(|&b| Q15::from_f32(b * bias_scale))
                        .collect();
                let dims = [d.w.shape()[0], d.w.shape()[1]];
                let nnz = weights.iter().filter(|w| !w.is_zero()).count();
                let density = nnz as f64 / weights.len() as f64;
                let sparse =
                    (density < SPARSE_DENSITY_THRESHOLD).then(|| csr_from_weights(dims, &weights));
                layers.push(QLayer::Dense(QDense {
                    dims,
                    weights,
                    bias,
                    shift,
                    sparse,
                }));
                a = a_out;
            }
            crate::layers::Layer::Conv2d(c) => {
                let ws = pow2_shift_for(c.filters.max_abs());
                let a_out = -(pow2_shift_for(max_out[li] / HEADROOM));
                let shift = a_out - a + ws;
                let weights = quantize_scaled(c.filters.data(), ws);
                let bias_scale = (2.0f32).powi(a_out);
                let bias = c
                    .bias
                    .data()
                    .iter()
                    .map(|&b| Q15::from_f32(b * bias_scale))
                    .collect();
                let s = c.filters.shape();
                let dims = [s[0], s[1], s[2], s[3]];
                let nnz = weights.iter().filter(|w| !w.is_zero()).count();
                let density = nnz as f64 / weights.len() as f64;
                let sparse = (density < SPARSE_DENSITY_THRESHOLD)
                    .then(|| sparse_taps_from_weights(dims, &weights));
                layers.push(QLayer::Conv(QConv {
                    dims,
                    weights,
                    bias,
                    shift,
                    sparse,
                }));
                a = a_out;
            }
            crate::layers::Layer::MaxPool2d(p) => {
                layers.push(QLayer::Pool(QPool { kh: p.kh, kw: p.kw }))
            }
            crate::layers::Layer::Relu(_) => layers.push(QLayer::Relu),
            crate::layers::Layer::Flatten(_) => layers.push(QLayer::Flatten),
        }
    }
    QModel {
        input_shape: input_shape.to_vec(),
        layers,
    }
}

/// Reusable buffers for [`QModel::forward_host_with`], so repeated host
/// inferences (calibration sweeps, GENESIS accuracy evaluation) allocate
/// nothing in steady state.
#[derive(Clone, Debug, Default)]
pub struct HostScratch {
    /// One output row of wide accumulators.
    acc_row: Vec<Accum>,
    /// Per-filter sparse taps flattened to (row base offset, weight).
    tap_bases: Vec<(usize, Q15)>,
    /// Activation ping buffer.
    ping: Vec<Q15>,
    /// Activation pong buffer.
    pong: Vec<Q15>,
}

impl QModel {
    /// Quantizes an input tensor to Q1.15 (inputs are expected in
    /// `[-1, 1)`, which all generators in [`crate::data`] guarantee).
    pub fn quantize_input(&self, x: &Tensor) -> Vec<Q15> {
        x.data().iter().map(|&v| Q15::from_f32(v)).collect()
    }

    /// Host forward pass, with full-precision accumulation per output
    /// element (the naïve baseline's semantics). Allocates fresh scratch;
    /// hot loops should hold a [`HostScratch`] and call
    /// [`QModel::forward_host_with`].
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the input shape.
    pub fn forward_host(&self, x: &[Q15]) -> Vec<Q15> {
        self.forward_host_with(x, &mut HostScratch::default())
    }

    /// Host forward pass through caller-provided scratch buffers.
    ///
    /// Activations ping-pong between two reused buffers and the kernels
    /// run through the restructured [`conv_host`] / [`dense_host`], so a
    /// steady-state inference performs no heap allocation beyond the
    /// returned logits.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the input shape.
    pub fn forward_host_with(&self, x: &[Q15], s: &mut HostScratch) -> Vec<Q15> {
        let expect: usize = self.input_shape.iter().product();
        assert_eq!(x.len(), expect, "input size mismatch");
        let mut shape = self.input_shape.clone();
        s.ping.clear();
        s.ping.extend_from_slice(x);
        for l in &self.layers {
            let out_shape = l.output_shape(&shape);
            match l {
                QLayer::Conv(c) => {
                    conv_host_into(
                        c,
                        &s.ping,
                        &shape,
                        &mut s.acc_row,
                        &mut s.tap_bases,
                        &mut s.pong,
                    );
                    std::mem::swap(&mut s.ping, &mut s.pong);
                }
                QLayer::Dense(d) => {
                    dense_host_into(d, &s.ping, &mut s.pong);
                    std::mem::swap(&mut s.ping, &mut s.pong);
                }
                QLayer::Pool(p) => {
                    pool_host_into(p, &s.ping, &shape, &mut s.pong);
                    std::mem::swap(&mut s.ping, &mut s.pong);
                }
                QLayer::Relu => {
                    for v in s.ping.iter_mut() {
                        *v = v.relu();
                    }
                }
                QLayer::Flatten => {}
            }
            shape = out_shape;
        }
        s.ping.clone()
    }

    /// Classifies an input: argmax over the quantized logits.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the input shape.
    pub fn predict_host(&self, x: &Tensor) -> usize {
        self.predict_host_with(x, &mut HostScratch::default())
    }

    /// [`QModel::predict_host`] through caller-provided scratch (the form
    /// GENESIS's accuracy sweeps use).
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the input shape.
    pub fn predict_host_with(&self, x: &Tensor, s: &mut HostScratch) -> usize {
        let logits = self.forward_host_with(&self.quantize_input(x), s);
        fxp::vecops::argmax(&logits).expect("empty logits")
    }

    /// FRAM words needed for all parameters in deployed form.
    pub fn param_words(&self) -> u64 {
        self.layers.iter().map(QLayer::param_words).sum()
    }

    /// FRAM words needed for activation buffers: SONIC's loop-ordered
    /// buffering double-buffers the largest inter-layer activation.
    pub fn activation_words(&self) -> u64 {
        let mut shape = self.input_shape.clone();
        let mut largest: usize = shape.iter().product();
        for l in &self.layers {
            shape = l.output_shape(&shape);
            largest = largest.max(shape.iter().product());
        }
        2 * largest as u64
    }

    /// Total FRAM words (parameters + activation double buffers).
    pub fn fram_words(&self) -> u64 {
        self.param_words() + self.activation_words()
    }

    /// Output shape of the whole model.
    pub fn output_shape(&self) -> Vec<usize> {
        let mut shape = self.input_shape.clone();
        for l in &self.layers {
            shape = l.output_shape(&shape);
        }
        shape
    }
}

/// Quantized convolution on the host (allocating wrapper over
/// [`conv_host_into`]). Bit-identical to [`conv_host_reference`]; the
/// equivalence proptests in this module pin that down.
pub fn conv_host(c: &QConv, x: &[Q15], shape: &[usize]) -> Vec<Q15> {
    let mut out = Vec::new();
    let (mut acc_row, mut tap_bases) = (Vec::new(), Vec::new());
    conv_host_into(c, x, shape, &mut acc_row, &mut tap_bases, &mut out);
    out
}

/// Restructured quantized convolution.
///
/// The sparse/dense dispatch is hoisted out of the loop nest; each
/// (filter, output-row) pair keeps a row of wide accumulators:
///
/// - **dense**: one [`fxp::vecops::fir_acc`] call per (channel,
///   kernel-row) streams a contiguous image row against a contiguous
///   `kw`-tap slice of the filter — the composition TAILS performs with
///   LEA FIR DTC calls (§7).
/// - **sparse**: tap coordinates are pre-flattened to row base offsets,
///   then each nonzero tap is one [`fxp::vecops::mac_acc`] over a
///   contiguous image row.
///
/// Because [`Accum`] arithmetic is exact, both reorderings are
/// bit-identical to the reference element-at-a-time loops.
///
/// # Panics
///
/// Panics if `x`/`shape` do not match the layer.
pub fn conv_host_into(
    c: &QConv,
    x: &[Q15],
    shape: &[usize],
    acc_row: &mut Vec<Accum>,
    tap_bases: &mut Vec<(usize, Q15)>,
    out: &mut Vec<Q15>,
) {
    let (nf, nc, kh, kw) = (c.dims[0], c.dims[1], c.dims[2], c.dims[3]);
    let (h, w) = (shape[1], shape[2]);
    assert_eq!(x.len(), nc * h * w, "conv input mismatch");
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    // Every output element and every accumulator lane is written below,
    // so plain resize() suffices (no-op re-zeroing in steady state).
    out.resize(nf * oh * ow, Q15::ZERO);
    acc_row.resize(ow, Accum::ZERO);
    match &c.sparse {
        None => {
            for f in 0..nf {
                let bias = c.bias[f];
                for oy in 0..oh {
                    acc_row.fill(Accum::ZERO);
                    for cc in 0..nc {
                        for ky in 0..kh {
                            let xrow = &x[(cc * h + oy + ky) * w..(cc * h + oy + ky + 1) * w];
                            let tap0 = ((f * nc + cc) * kh + ky) * kw;
                            fxp::vecops::fir_acc(xrow, &c.weights[tap0..tap0 + kw], acc_row);
                        }
                    }
                    let orow = &mut out[(f * oh + oy) * ow..(f * oh + oy + 1) * ow];
                    for (o, &acc) in orow.iter_mut().zip(acc_row.iter()) {
                        *o = finish_acc(acc, c.shift, bias);
                    }
                }
            }
        }
        Some(s) => {
            for f in 0..nf {
                let bias = c.bias[f];
                tap_bases.clear();
                tap_bases.extend(
                    s.taps[f]
                        .iter()
                        .map(|t| ((t.c as usize * h + t.ky as usize) * w + t.kx as usize, t.w)),
                );
                for oy in 0..oh {
                    acc_row.fill(Accum::ZERO);
                    for &(base, tw) in tap_bases.iter() {
                        let xrow = &x[base + oy * w..base + oy * w + ow];
                        fxp::vecops::mac_acc(acc_row, xrow, tw);
                    }
                    let orow = &mut out[(f * oh + oy) * ow..(f * oh + oy + 1) * ow];
                    for (o, &acc) in orow.iter_mut().zip(acc_row.iter()) {
                        *o = finish_acc(acc, c.shift, bias);
                    }
                }
            }
        }
    }
}

/// Quantized fully-connected layer on the host (allocating wrapper over
/// [`dense_host_into`]). Bit-identical to [`dense_host_reference`].
pub fn dense_host(d: &QDense, x: &[Q15]) -> Vec<Q15> {
    let mut out = Vec::new();
    dense_host_into(d, x, &mut out);
    out
}

/// Restructured quantized fully-connected kernel: the sparse/dense
/// dispatch is hoisted out of the output loop, the dense path is one
/// [`fxp::vecops::dot`] per contiguous weight row, and the sparse path
/// walks each CSR row as a pair of zipped slices.
///
/// # Panics
///
/// Panics if `x` does not match the layer.
pub fn dense_host_into(d: &QDense, x: &[Q15], out: &mut Vec<Q15>) {
    let (out_n, in_n) = (d.dims[0], d.dims[1]);
    assert_eq!(x.len(), in_n, "dense input mismatch");
    out.clear();
    out.reserve(out_n);
    match &d.sparse {
        None => {
            for o in 0..out_n {
                let row = &d.weights[o * in_n..(o + 1) * in_n];
                let acc = fxp::vecops::dot(x, row);
                out.push(finish_acc(acc, d.shift, d.bias[o]));
            }
        }
        Some(s) => {
            for o in 0..out_n {
                let (lo, hi) = (s.row_ptr[o] as usize, s.row_ptr[o + 1] as usize);
                let mut acc = Accum::ZERO;
                for (&col, &val) in s.col[lo..hi].iter().zip(s.val[lo..hi].iter()) {
                    acc.mac(x[col as usize], val);
                }
                out.push(finish_acc(acc, d.shift, d.bias[o]));
            }
        }
    }
}

fn pool_host_into(p: &QPool, x: &[Q15], shape: &[usize], out: &mut Vec<Q15>) {
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let (oh, ow) = (h / p.kh, w / p.kw);
    // Every element is written below; plain resize() avoids a re-zeroing
    // pass over a reused buffer.
    out.resize(c * oh * ow, Q15::MIN);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = Q15::MIN;
                for py in 0..p.kh {
                    for px in 0..p.kw {
                        let v = x[(ch * h + oy * p.kh + py) * w + ox * p.kw + px];
                        if v > best {
                            best = v;
                        }
                    }
                }
                out[(ch * oh + oy) * ow + ox] = best;
            }
        }
    }
}

/// The original element-at-a-time convolution loop, kept as the
/// semantic reference: the optimized [`conv_host`] must produce
/// byte-identical output (sparse and dense variants).
#[allow(clippy::needless_range_loop)] // deliberately the original naive loops
pub fn conv_host_reference(c: &QConv, x: &[Q15], shape: &[usize]) -> Vec<Q15> {
    let (nf, nc, kh, kw) = (c.dims[0], c.dims[1], c.dims[2], c.dims[3]);
    let (h, w) = (shape[1], shape[2]);
    let (oh, ow) = (h - kh + 1, w - kw + 1);
    let mut out = vec![Q15::ZERO; nf * oh * ow];
    for f in 0..nf {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = Accum::ZERO;
                match &c.sparse {
                    Some(s) => {
                        for t in &s.taps[f] {
                            let xi =
                                (t.c as usize * h + oy + t.ky as usize) * w + ox + t.kx as usize;
                            acc.mac(x[xi], t.w);
                        }
                    }
                    None => {
                        for cc in 0..nc {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let xi = (cc * h + oy + ky) * w + ox + kx;
                                    let wi = ((f * nc + cc) * kh + ky) * kw + kx;
                                    acc.mac(x[xi], c.weights[wi]);
                                }
                            }
                        }
                    }
                }
                out[(f * oh + oy) * ow + ox] = finish_acc(acc, c.shift, c.bias[f]);
            }
        }
    }
    out
}

/// The original fully-connected loop, kept as the semantic reference:
/// the optimized [`dense_host`] must produce byte-identical output
/// (sparse and dense variants).
#[allow(clippy::needless_range_loop)] // deliberately the original naive loops
pub fn dense_host_reference(d: &QDense, x: &[Q15]) -> Vec<Q15> {
    let (out_n, in_n) = (d.dims[0], d.dims[1]);
    assert_eq!(x.len(), in_n, "dense input mismatch");
    let mut out = vec![Q15::ZERO; out_n];
    for o in 0..out_n {
        let mut acc = Accum::ZERO;
        match &d.sparse {
            Some(s) => {
                for i in s.row_ptr[o] as usize..s.row_ptr[o + 1] as usize {
                    acc.mac(x[s.col[i] as usize], s.val[i]);
                }
            }
            None => {
                for i in 0..in_n {
                    acc.mac(x[i], d.weights[o * in_n + i]);
                }
            }
        }
        out[o] = finish_acc(acc, d.shift, d.bias[o]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Layer;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    fn calib(n: usize, shape: &[usize]) -> Vec<Tensor> {
        let mut r = rng();
        (0..n)
            .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut r))
            .collect()
    }

    #[test]
    fn finish_acc_applies_shift_and_bias() {
        let mut acc = Accum::ZERO;
        acc.mac(Q15::from_f32(0.25), Q15::from_f32(0.5)); // 0.125
        let y = finish_acc(acc, 1, Q15::from_f32(0.1));
        assert!((y.to_f32() - 0.35).abs() < 1e-3);
        let y2 = finish_acc(acc, -1, Q15::ZERO);
        assert!((y2.to_f32() - 0.0625).abs() < 1e-3);
    }

    #[test]
    fn pow2_shift_covers_range() {
        assert_eq!(pow2_shift_for(0.5), 0);
        assert_eq!(pow2_shift_for(1.0), 1);
        assert_eq!(pow2_shift_for(1.7), 1);
        assert_eq!(pow2_shift_for(2.0), 2);
        assert_eq!(pow2_shift_for(7.9), 3);
    }

    #[test]
    fn quantized_forward_tracks_float_forward() {
        let mut r = rng();
        let mut model = Model::new(vec![
            Layer::conv2d(3, 1, 3, 3, &mut r),
            Layer::relu(),
            Layer::maxpool(2),
            Layer::flatten(),
            Layer::dense(3 * 3 * 3, 4, &mut r),
        ]);
        let shape = [1usize, 8, 8];
        let cal = calib(4, &shape);
        let qm = quantize(&mut model, &shape, &cal);
        // On fresh inputs the quantized logits track float logits closely
        // and the argmax agrees almost always.
        let mut agree = 0;
        let mut r2 = rand::rngs::StdRng::seed_from_u64(99);
        let n = 30;
        for _ in 0..n {
            let x = Tensor::uniform(shape.to_vec(), 0.9, &mut r2);
            let fp = model.predict(&x);
            let qp = qm.predict_host(&x);
            if fp == qp {
                agree += 1;
            }
        }
        assert!(agree >= n * 8 / 10, "only {agree}/{n} argmax agreement");
    }

    #[test]
    fn large_weights_get_weight_shift() {
        let w = Tensor::from_vec(vec![1, 2], vec![3.0, -2.5]);
        let b = Tensor::from_vec(vec![1], vec![0.0]);
        let mut model = Model::new(vec![Layer::dense_from(w, b)]);
        let qm = quantize(&mut model, &[2], &calib(3, &[2]));
        match &qm.layers[0] {
            QLayer::Dense(d) => {
                // Weights stored scaled into range: 3.0/2^2 = 0.75,
                // -2.5/2^2 = -0.625.
                assert!((d.weights[0].to_f32() - 0.75).abs() < 1e-3);
                assert!((d.weights[1].to_f32() + 0.625).abs() < 1e-3);
            }
            _ => unreachable!(),
        }
        // End-to-end value check: y = 3*x0 - 2.5*x1.
        let x = Tensor::from_vec(vec![2], vec![0.1, 0.1]);
        let y = qm.forward_host(&qm.quantize_input(&x));
        // Output scale may be reduced by calibration; check ratio against a
        // second input instead of the absolute value.
        let x2 = Tensor::from_vec(vec![2], vec![0.2, 0.2]);
        let y2 = qm.forward_host(&qm.quantize_input(&x2));
        let ratio = y2[0].to_f32() / y[0].to_f32();
        assert!((ratio - 2.0).abs() < 0.1, "linearity broken: ratio {ratio}");
    }

    #[test]
    fn pruned_dense_is_deployed_sparse() {
        let mut w = Tensor::zeros(vec![4, 10]);
        w.data_mut()[3] = 0.5;
        w.data_mut()[17] = -0.25;
        let b = Tensor::zeros(vec![4]);
        let mut model = Model::new(vec![Layer::dense_from(w, b)]);
        let qm = quantize(&mut model, &[10], &calib(2, &[10]));
        match &qm.layers[0] {
            QLayer::Dense(d) => {
                let s = d.sparse.as_ref().expect("should be sparse");
                assert_eq!(s.val.len(), 2);
                assert_eq!(s.row_ptr.len(), 5);
                assert!(qm.layers[0].is_sparse());
            }
            _ => unreachable!(),
        }
        // Sparse param words < dense param words would have been.
        assert!(qm.param_words() < 44);
    }

    #[test]
    fn dense_conv_stays_dense() {
        let mut r = rng();
        let mut model = Model::new(vec![Layer::conv2d(2, 1, 3, 3, &mut r)]);
        let qm = quantize(&mut model, &[1, 6, 6], &calib(2, &[1, 6, 6]));
        assert!(!qm.layers[0].is_sparse());
    }

    #[test]
    fn sparse_and_dense_paths_agree() {
        // A conv pruned to 30% density: the sparse representation must
        // produce bit-identical outputs to the dense loop.
        let mut r = rng();
        let mut filters = Tensor::uniform(vec![2, 1, 3, 3], 0.5, &mut r);
        for (i, v) in filters.data_mut().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let bias = Tensor::zeros(vec![2]);
        let mut model = Model::new(vec![Layer::conv2d_from(filters, bias)]);
        let shape = [1usize, 5, 5];
        let qm = quantize(&mut model, &shape, &calib(2, &shape));
        let qc = match &qm.layers[0] {
            QLayer::Conv(c) => c.clone(),
            _ => unreachable!(),
        };
        assert!(qc.sparse.is_some());
        let mut dense_version = qc.clone();
        dense_version.sparse = None;
        let x: Vec<Q15> = (0..25).map(|i| Q15::from_f32(i as f32 / 40.0)).collect();
        let a = conv_host(&qc, &x, &shape);
        let b = conv_host(&dense_version, &x, &shape);
        assert_eq!(a, b);
    }

    #[test]
    fn forward_host_with_reuses_scratch_and_matches_fresh() {
        let mut r = rng();
        let mut model = Model::new(vec![
            Layer::conv2d(3, 1, 3, 3, &mut r),
            Layer::relu(),
            Layer::maxpool(2),
            Layer::flatten(),
            Layer::dense(3 * 3 * 3, 4, &mut r),
        ]);
        let shape = [1usize, 8, 8];
        let qm = quantize(&mut model, &shape, &calib(4, &shape));
        let mut scratch = HostScratch::default();
        let mut r2 = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..5 {
            let x = qm.quantize_input(&Tensor::uniform(shape.to_vec(), 0.9, &mut r2));
            assert_eq!(qm.forward_host_with(&x, &mut scratch), qm.forward_host(&x));
        }
    }

    #[test]
    fn fram_accounting_includes_double_buffers() {
        let mut r = rng();
        let mut model = Model::new(vec![
            Layer::conv2d(4, 1, 3, 3, &mut r),
            Layer::flatten(),
            Layer::dense(4 * 6 * 6, 2, &mut r),
        ]);
        let shape = [1usize, 8, 8];
        let qm = quantize(&mut model, &shape, &calib(2, &shape));
        // Largest activation is conv output: 4*6*6 = 144 words, doubled.
        assert_eq!(qm.activation_words(), 288);
        assert!(qm.fram_words() > qm.param_words());
        assert_eq!(qm.output_shape(), vec![2]);
    }
}

#[cfg(test)]
mod proptests {
    //! The deployment-correctness contract: the restructured kernels that
    //! every backend's host-side reference runs through must be
    //! *byte-identical* to the original element-at-a-time loops, for both
    //! the dense and the sparse representations.

    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn random_q15(r: &mut rand::rngs::StdRng) -> Q15 {
        Q15::from_raw(r.gen_range(-32768..32768i32) as i16)
    }

    /// Builds a random conv layer; when `sparse`, ~70% of taps are pruned
    /// and the tap lists are derived exactly as `quantize` derives them.
    fn random_qconv(seed: u64, sparse: bool) -> (QConv, Vec<Q15>, Vec<usize>) {
        let mut r = rng(seed);
        let nc = r.gen_range(1..4usize);
        let kh = r.gen_range(1..4usize);
        let kw = r.gen_range(1..5usize);
        let nf = r.gen_range(1..6usize);
        let h = kh + r.gen_range(0..7usize);
        let w = kw + r.gen_range(0..7usize);
        let mut weights: Vec<Q15> = (0..nf * nc * kh * kw).map(|_| random_q15(&mut r)).collect();
        if sparse {
            for v in weights.iter_mut() {
                if r.gen_bool(0.7) {
                    *v = Q15::ZERO;
                }
            }
        }
        let taps = sparse.then(|| sparse_taps_from_weights([nf, nc, kh, kw], &weights));
        let conv = QConv {
            dims: [nf, nc, kh, kw],
            weights,
            bias: (0..nf).map(|_| random_q15(&mut r)).collect(),
            shift: r.gen_range(-2..3),
            sparse: taps,
        };
        let x: Vec<Q15> = (0..nc * h * w).map(|_| random_q15(&mut r)).collect();
        (conv, x, vec![nc, h, w])
    }

    fn random_qdense(seed: u64, sparse: bool) -> (QDense, Vec<Q15>) {
        let mut r = rng(seed);
        let out_n = r.gen_range(1..12usize);
        let in_n = r.gen_range(1..40usize);
        let mut weights: Vec<Q15> = (0..out_n * in_n).map(|_| random_q15(&mut r)).collect();
        if sparse {
            for v in weights.iter_mut() {
                if r.gen_bool(0.8) {
                    *v = Q15::ZERO;
                }
            }
        }
        let csr = sparse.then(|| csr_from_weights([out_n, in_n], &weights));
        let dense = QDense {
            dims: [out_n, in_n],
            weights,
            bias: (0..out_n).map(|_| random_q15(&mut r)).collect(),
            shift: r.gen_range(-2..3),
            sparse: csr,
        };
        let x: Vec<Q15> = (0..in_n).map(|_| random_q15(&mut r)).collect();
        (dense, x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn conv_host_matches_reference_bytewise(seed in 0u64..100_000, sparse in any::<bool>()) {
            let (conv, x, shape) = random_qconv(seed, sparse);
            let fast = conv_host(&conv, &x, &shape);
            let reference = conv_host_reference(&conv, &x, &shape);
            let fast_raw: Vec<i16> = fast.iter().map(|q| q.raw()).collect();
            let ref_raw: Vec<i16> = reference.iter().map(|q| q.raw()).collect();
            prop_assert_eq!(fast_raw, ref_raw);
        }

        #[test]
        fn dense_host_matches_reference_bytewise(seed in 0u64..100_000, sparse in any::<bool>()) {
            let (dense, x) = random_qdense(seed, sparse);
            let fast = dense_host(&dense, &x);
            let reference = dense_host_reference(&dense, &x);
            let fast_raw: Vec<i16> = fast.iter().map(|q| q.raw()).collect();
            let ref_raw: Vec<i16> = reference.iter().map(|q| q.raw()).collect();
            prop_assert_eq!(fast_raw, ref_raw);
        }
    }
}
