//! Sparse representations for pruned layers (`f32`, host side).
//!
//! GENESIS prunes near-zero weights (§5.2); the deployed kernels then store
//! and traverse only the nonzeros. This module provides the host-side
//! compressed formats; [`crate::quant`] mirrors them in Q1.15 for the
//! device.

use crate::tensor::Tensor;

/// A compressed-sparse-row matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    /// Number of rows (outputs).
    pub rows: usize,
    /// Number of columns (inputs).
    pub cols: usize,
    /// Row start offsets into `col_idx`/`values` (length `rows + 1`).
    pub row_ptr: Vec<u32>,
    /// Column index of each nonzero.
    pub col_idx: Vec<u32>,
    /// Value of each nonzero.
    pub values: Vec<f32>,
}

impl CsrMatrix {
    /// Compresses a dense row-major `[rows, cols]` matrix, dropping exact
    /// zeros.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank-2.
    pub fn from_dense(w: &Tensor) -> Self {
        assert_eq!(w.shape().len(), 2, "CSR requires a rank-2 tensor");
        let (rows, cols) = (w.shape()[0], w.shape()[1]);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = w.data()[r * cols + c];
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are nonzero.
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Sparse matrix × dense vector (allocating wrapper over
    /// [`CsrMatrix::matvec_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut y = Vec::new();
        self.matvec_into(x, &mut y);
        y
    }

    /// Sparse matrix × dense vector into a caller-provided buffer
    /// (cleared and refilled), so repeated products never allocate. Each
    /// row's nonzeros are walked as a pair of zipped slices, keeping the
    /// gather loop free of bounds checks on the CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_into(&self, x: &[f32], y: &mut Vec<f32>) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        y.clear();
        y.reserve(self.rows);
        for r in 0..self.rows {
            let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0;
            for (&v, &c) in self.values[s..e].iter().zip(self.col_idx[s..e].iter()) {
                acc += v * x[c as usize];
            }
            y.push(acc);
        }
    }

    /// Reconstructs the dense `[rows, cols]` tensor.
    pub fn to_dense(&self) -> Tensor {
        let mut t = Tensor::zeros(vec![self.rows, self.cols]);
        for r in 0..self.rows {
            let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for i in s..e {
                t.data_mut()[r * self.cols + self.col_idx[i] as usize] = self.values[i];
            }
        }
        t
    }
}

/// One nonzero tap of a sparse convolution filter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FilterTap {
    /// Input channel.
    pub c: u16,
    /// Kernel row.
    pub ky: u16,
    /// Kernel column.
    pub kx: u16,
    /// Tap value.
    pub w: f32,
}

/// A pruned convolution: per-filter lists of nonzero taps.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseConv {
    /// Kernel dims `[C, KH, KW]` (shared by all filters).
    pub kernel: [usize; 3],
    /// `taps[f]` holds filter `f`'s nonzeros in (c, ky, kx) order.
    pub taps: Vec<Vec<FilterTap>>,
}

impl SparseConv {
    /// Compresses dense filters `[F, C, KH, KW]`, dropping exact zeros.
    ///
    /// # Panics
    ///
    /// Panics if `filters` is not rank-4.
    pub fn from_dense(filters: &Tensor) -> Self {
        assert_eq!(filters.shape().len(), 4, "filters must be rank-4");
        let s = filters.shape();
        let (nf, nc, kh, kw) = (s[0], s[1], s[2], s[3]);
        let mut taps = Vec::with_capacity(nf);
        for f in 0..nf {
            let mut list = Vec::new();
            for c in 0..nc {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let v = filters.data()[((f * nc + c) * kh + ky) * kw + kx];
                        if v != 0.0 {
                            list.push(FilterTap {
                                c: c as u16,
                                ky: ky as u16,
                                kx: kx as u16,
                                w: v,
                            });
                        }
                    }
                }
            }
            taps.push(list);
        }
        SparseConv {
            kernel: [nc, kh, kw],
            taps,
        }
    }

    /// Total nonzero taps across all filters.
    pub fn nnz(&self) -> usize {
        self.taps.iter().map(Vec::len).sum()
    }

    /// The largest per-filter tap count (drives the worst-case task cost
    /// of tiled implementations).
    pub fn max_taps_per_filter(&self) -> usize {
        self.taps.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_vec(vec![2, 3], vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0])
    }

    #[test]
    fn csr_roundtrip() {
        let d = sample();
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_ptr, vec![0, 2, 3]);
        assert_eq!(csr.col_idx, vec![0, 2, 2]);
        assert_eq!(csr.to_dense(), d);
        assert!((csr.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn csr_matvec_matches_dense() {
        let csr = CsrMatrix::from_dense(&sample());
        let y = csr.matvec(&[1.0, 10.0, 100.0]);
        assert_eq!(y, vec![201.0, 300.0]);
    }

    #[test]
    fn csr_matvec_into_reuses_buffer() {
        let csr = CsrMatrix::from_dense(&sample());
        let mut y = vec![9.0; 17]; // stale garbage to overwrite
        csr.matvec_into(&[1.0, 10.0, 100.0], &mut y);
        assert_eq!(y, vec![201.0, 300.0]);
        csr.matvec_into(&[0.0, 0.0, 1.0], &mut y);
        assert_eq!(y, vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn csr_matvec_validates() {
        let _ = CsrMatrix::from_dense(&sample()).matvec(&[1.0]);
    }

    #[test]
    fn sparse_conv_collects_taps_per_filter() {
        let filters = Tensor::from_vec(
            vec![2, 1, 2, 2],
            vec![0.5, 0.0, 0.0, -0.5, 0.0, 0.0, 0.0, 1.0],
        );
        let sc = SparseConv::from_dense(&filters);
        assert_eq!(sc.kernel, [1, 2, 2]);
        assert_eq!(sc.nnz(), 3);
        assert_eq!(sc.taps[0].len(), 2);
        assert_eq!(sc.taps[1].len(), 1);
        assert_eq!(sc.max_taps_per_filter(), 2);
        assert_eq!(
            sc.taps[1][0],
            FilterTap {
                c: 0,
                ky: 1,
                kx: 1,
                w: 1.0
            }
        );
    }

    #[test]
    fn empty_filter_yields_empty_tap_list() {
        let filters = Tensor::zeros(vec![1, 1, 2, 2]);
        let sc = SparseConv::from_dense(&filters);
        assert_eq!(sc.nnz(), 0);
        assert_eq!(sc.max_taps_per_filter(), 0);
    }
}
