//! Network layers with forward and backward passes.
//!
//! Layers cache whatever the backward pass needs during `forward`, so a
//! training step is `forward` → loss gradient → `backward` → optimizer
//! step. Pruned layers carry an optional 0/1 *mask* with the same shape as
//! the weights; masked weights stay zero through re-training (GENESIS
//! re-trains after compression, §5.2).

use crate::im2col;
use crate::tensor::Tensor;
use rand::Rng;

/// A mutable view over one parameter tensor during optimization.
pub struct ParamSet<'a> {
    /// The parameter values.
    pub values: &'a mut [f32],
    /// The accumulated gradients (same length).
    pub grads: &'a mut [f32],
    /// Optional 0/1 pruning mask (same length); masked entries must remain
    /// zero after updates.
    pub mask: Option<&'a [f32]>,
}

/// A fully-connected layer: `y = W·x + b`.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Weights, shape `[out, in]`.
    pub w: Tensor,
    /// Bias, shape `[out]`.
    pub b: Tensor,
    /// Optional 0/1 pruning mask over `w`.
    pub mask: Option<Tensor>,
    gw: Tensor,
    gb: Tensor,
    cache_x: Option<Tensor>,
}

/// A valid (no padding), stride-1 2-D convolution.
///
/// Input shape `[C, H, W]`, filters `[F, C, KH, KW]`, output
/// `[F, H-KH+1, W-KW+1]`. One-dimensional convolutions are expressed with
/// degenerate dims (e.g. `KH = 1`), which is how the separated "3×1D"
/// layers of Table 2 are represented.
#[derive(Debug)]
pub struct Conv2d {
    /// Filters, shape `[F, C, KH, KW]`.
    pub filters: Tensor,
    /// Bias, shape `[F]`.
    pub bias: Tensor,
    /// Optional 0/1 pruning mask over `filters`.
    pub mask: Option<Tensor>,
    gf: Tensor,
    gb: Tensor,
    cache_x: Option<Tensor>,
    /// im2col patch scratch, reused across forward calls.
    patches: Vec<f32>,
}

impl Clone for Conv2d {
    fn clone(&self) -> Self {
        Conv2d {
            filters: self.filters.clone(),
            bias: self.bias.clone(),
            mask: self.mask.clone(),
            gf: self.gf.clone(),
            gb: self.gb.clone(),
            cache_x: self.cache_x.clone(),
            // Scratch is not model state: an empty clone re-grows it on
            // first forward instead of copying up to ~100 KB per layer
            // (GENESIS clones the base model once per sweep plan).
            patches: Vec::new(),
        }
    }
}

/// Max pooling with window `(kh, kw)` and the same stride (floor
/// semantics). Rectangular windows express the 1-D pooling of the HAR and
/// OkG networks (`1×2`, `1×3`).
#[derive(Clone, Debug)]
pub struct MaxPool2d {
    /// Window height (and vertical stride).
    pub kh: usize,
    /// Window width (and horizontal stride).
    pub kw: usize,
    cache_shape: Vec<usize>,
    cache_argmax: Vec<usize>,
}

/// Rectified linear activation.
#[derive(Clone, Debug)]
pub struct Relu {
    cache_mask: Vec<bool>,
}

/// Reshapes any input to rank-1 (parameters: none).
#[derive(Clone, Debug)]
pub struct Flatten {
    cache_shape: Vec<usize>,
}

/// A network layer.
#[derive(Clone, Debug)]
pub enum Layer {
    /// Fully-connected.
    Dense(Dense),
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// ReLU activation.
    Relu(Relu),
    /// Flatten to rank-1.
    Flatten(Flatten),
}

impl Layer {
    /// A dense layer with Glorot-uniform initialization.
    pub fn dense<R: Rng>(input: usize, output: usize, rng: &mut R) -> Layer {
        let scale = (6.0 / (input + output) as f32).sqrt();
        Layer::Dense(Dense {
            w: Tensor::uniform(vec![output, input], scale, rng),
            b: Tensor::zeros(vec![output]),
            mask: None,
            gw: Tensor::zeros(vec![output, input]),
            gb: Tensor::zeros(vec![output]),
            cache_x: None,
        })
    }

    /// A dense layer from explicit weights/bias (used by GENESIS when it
    /// rebuilds factored layers).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn dense_from(w: Tensor, b: Tensor) -> Layer {
        assert_eq!(w.shape().len(), 2, "dense weights must be rank-2");
        assert_eq!(w.shape()[0], b.shape()[0], "bias/output mismatch");
        let (gw, gb) = (
            Tensor::zeros(w.shape().to_vec()),
            Tensor::zeros(b.shape().to_vec()),
        );
        Layer::Dense(Dense {
            w,
            b,
            mask: None,
            gw,
            gb,
            cache_x: None,
        })
    }

    /// A convolution with Glorot-uniform initialization.
    pub fn conv2d<R: Rng>(out_ch: usize, in_ch: usize, kh: usize, kw: usize, rng: &mut R) -> Layer {
        let fan_in = (in_ch * kh * kw) as f32;
        let fan_out = (out_ch * kh * kw) as f32;
        let scale = (6.0 / (fan_in + fan_out)).sqrt();
        Layer::Conv2d(Conv2d {
            filters: Tensor::uniform(vec![out_ch, in_ch, kh, kw], scale, rng),
            bias: Tensor::zeros(vec![out_ch]),
            mask: None,
            gf: Tensor::zeros(vec![out_ch, in_ch, kh, kw]),
            gb: Tensor::zeros(vec![out_ch]),
            cache_x: None,
            patches: Vec::new(),
        })
    }

    /// A convolution from explicit filters/bias.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn conv2d_from(filters: Tensor, bias: Tensor) -> Layer {
        assert_eq!(filters.shape().len(), 4, "filters must be rank-4");
        assert_eq!(filters.shape()[0], bias.shape()[0], "bias/filter mismatch");
        let (gf, gb) = (
            Tensor::zeros(filters.shape().to_vec()),
            Tensor::zeros(bias.shape().to_vec()),
        );
        Layer::Conv2d(Conv2d {
            filters,
            bias,
            mask: None,
            gf,
            gb,
            cache_x: None,
            patches: Vec::new(),
        })
    }

    /// Max pooling with window and stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn maxpool(k: usize) -> Layer {
        Layer::maxpool_rect(k, k)
    }

    /// Max pooling with a rectangular window and stride `(kh, kw)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn maxpool_rect(kh: usize, kw: usize) -> Layer {
        assert!(kh > 0 && kw > 0, "pool window must be positive");
        Layer::MaxPool2d(MaxPool2d {
            kh,
            kw,
            cache_shape: Vec::new(),
            cache_argmax: Vec::new(),
        })
    }

    /// ReLU activation.
    pub fn relu() -> Layer {
        Layer::Relu(Relu {
            cache_mask: Vec::new(),
        })
    }

    /// Flatten to rank-1.
    pub fn flatten() -> Layer {
        Layer::Flatten(Flatten {
            cache_shape: Vec::new(),
        })
    }

    /// Installs a pruning mask (0/1 tensor shaped like the weights) and
    /// zeroes the masked weights.
    ///
    /// # Panics
    ///
    /// Panics on parameterless layers or shape mismatch.
    pub fn set_mask(&mut self, mask: Tensor) {
        match self {
            Layer::Dense(d) => {
                assert_eq!(mask.shape(), d.w.shape(), "mask shape mismatch");
                for (w, &m) in d.w.data_mut().iter_mut().zip(mask.data()) {
                    *w *= m;
                }
                d.mask = Some(mask);
            }
            Layer::Conv2d(c) => {
                assert_eq!(mask.shape(), c.filters.shape(), "mask shape mismatch");
                for (w, &m) in c.filters.data_mut().iter_mut().zip(mask.data()) {
                    *w *= m;
                }
                c.mask = Some(mask);
            }
            _ => panic!("set_mask on a parameterless layer"),
        }
    }

    /// Forward pass; caches state for `backward`.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the layer.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        match self {
            Layer::Dense(d) => d.forward(x),
            Layer::Conv2d(c) => c.forward(x),
            Layer::MaxPool2d(p) => p.forward(x),
            Layer::Relu(r) => r.forward(x),
            Layer::Flatten(f) => f.forward(x),
        }
    }

    /// Backward pass: accumulates parameter gradients, returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched gradient
    /// shape.
    pub fn backward(&mut self, g: &Tensor) -> Tensor {
        match self {
            Layer::Dense(d) => d.backward(g),
            Layer::Conv2d(c) => c.backward(g),
            Layer::MaxPool2d(p) => p.backward(g),
            Layer::Relu(r) => r.backward(g),
            Layer::Flatten(f) => f.backward(g),
        }
    }

    /// Visits each parameter tensor (values, gradients, mask).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(ParamSet<'_>)) {
        match self {
            Layer::Dense(d) => {
                f(ParamSet {
                    values: d.w.data_mut(),
                    grads: d.gw.data_mut(),
                    mask: d.mask.as_ref().map(Tensor::data),
                });
                f(ParamSet {
                    values: d.b.data_mut(),
                    grads: d.gb.data_mut(),
                    mask: None,
                });
            }
            Layer::Conv2d(c) => {
                f(ParamSet {
                    values: c.filters.data_mut(),
                    grads: c.gf.data_mut(),
                    mask: c.mask.as_ref().map(Tensor::data),
                });
                f(ParamSet {
                    values: c.bias.data_mut(),
                    grads: c.gb.data_mut(),
                    mask: None,
                });
            }
            _ => {}
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| {
            for g in p.grads.iter_mut() {
                *g = 0.0;
            }
        });
    }

    /// Output shape for a given input shape (shape inference).
    ///
    /// # Panics
    ///
    /// Panics if the input shape is invalid for this layer.
    pub fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        match self {
            Layer::Dense(d) => {
                let n: usize = input.iter().product();
                assert_eq!(n, d.w.shape()[1], "dense input size mismatch");
                vec![d.w.shape()[0]]
            }
            Layer::Conv2d(c) => {
                assert_eq!(input.len(), 3, "conv input must be rank-3");
                let (ci, h, w) = (input[0], input[1], input[2]);
                let fs = c.filters.shape();
                assert_eq!(ci, fs[1], "conv channel mismatch");
                assert!(h >= fs[2] && w >= fs[3], "conv input smaller than kernel");
                vec![fs[0], h - fs[2] + 1, w - fs[3] + 1]
            }
            Layer::MaxPool2d(p) => {
                assert_eq!(input.len(), 3, "pool input must be rank-3");
                vec![input[0], input[1] / p.kh, input[2] / p.kw]
            }
            Layer::Relu(_) => input.to_vec(),
            Layer::Flatten(_) => vec![input.iter().product()],
        }
    }

    /// Multiply-accumulate operations for one inference at this input
    /// shape (the x-axis of the paper's Fig. 4). Zero (pruned) weights are
    /// excluded, since the deployed sparse kernels skip them.
    pub fn macs(&self, input: &[usize]) -> u64 {
        match self {
            Layer::Dense(d) => d.w.data().iter().filter(|&&w| w != 0.0).count() as u64,
            Layer::Conv2d(c) => {
                let out = self.output_shape(input);
                let nnz = c.filters.data().iter().filter(|&&w| w != 0.0).count() as u64;
                nnz * (out[1] * out[2]) as u64
            }
            _ => 0,
        }
    }

    /// Number of (nonzero) parameters this layer stores, the unit of the
    /// paper's memory-feasibility constraint.
    pub fn nonzero_params(&self) -> u64 {
        match self {
            Layer::Dense(d) => {
                d.w.data().iter().filter(|&&w| w != 0.0).count() as u64 + d.b.len() as u64
            }
            Layer::Conv2d(c) => {
                c.filters.data().iter().filter(|&&w| w != 0.0).count() as u64 + c.bias.len() as u64
            }
            _ => 0,
        }
    }

    /// Total parameter slots (including zeros), i.e. the dense footprint.
    pub fn dense_params(&self) -> u64 {
        match self {
            Layer::Dense(d) => (d.w.len() + d.b.len()) as u64,
            Layer::Conv2d(c) => (c.filters.len() + c.bias.len()) as u64,
            _ => 0,
        }
    }

    /// A short human-readable description ("conv 20x1x5x5", "fc 200x1600").
    pub fn describe(&self) -> String {
        match self {
            Layer::Dense(d) => format!("fc {}x{}", d.w.shape()[0], d.w.shape()[1]),
            Layer::Conv2d(c) => {
                let s = c.filters.shape();
                format!("conv {}x{}x{}x{}", s[0], s[1], s[2], s[3])
            }
            Layer::MaxPool2d(p) => format!("maxpool {}x{}", p.kh, p.kw),
            Layer::Relu(_) => "relu".to_string(),
            Layer::Flatten(_) => "flatten".to_string(),
        }
    }
}

impl Dense {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (out, inp) = (self.w.shape()[0], self.w.shape()[1]);
        assert_eq!(x.len(), inp, "dense input size mismatch");
        let mut y = Tensor::zeros(vec![out]);
        im2col::matvec_bias(self.w.data(), x.data(), self.b.data(), y.data_mut());
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, g: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("backward before forward");
        let (out, inp) = (self.w.shape()[0], self.w.shape()[1]);
        assert_eq!(g.len(), out, "dense gradient size mismatch");
        let mut dx = Tensor::zeros(vec![inp]);
        for o in 0..out {
            let go = g.data()[o];
            self.gb.data_mut()[o] += go;
            let row = &self.w.data()[o * inp..(o + 1) * inp];
            let grow = &mut self.gw.data_mut()[o * inp..(o + 1) * inp];
            for i in 0..inp {
                grow[i] += go * x.data()[i];
                dx.data_mut()[i] += go * row[i];
            }
        }
        dx
    }
}

impl Conv2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let fs = self.filters.shape().to_vec();
        let (nf, nc, kh, kw) = (fs[0], fs[1], fs[2], fs[3]);
        let xs = x.shape();
        assert_eq!(xs.len(), 3, "conv input must be rank-3");
        assert_eq!(xs[0], nc, "conv channel mismatch");
        let (h, w) = (xs[1], xs[2]);
        let (oh, ow) = im2col::conv_out_dims(h, w, kh, kw);
        let mut y = Tensor::zeros(vec![nf, oh, ow]);
        im2col::conv2d_im2col(
            x.data(),
            self.filters.data(),
            self.bias.data(),
            nc,
            h,
            w,
            nf,
            kh,
            kw,
            &mut self.patches,
            y.data_mut(),
        );
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, g: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("backward before forward");
        let fs = self.filters.shape().to_vec();
        let (nf, nc, kh, kw) = (fs[0], fs[1], fs[2], fs[3]);
        let (h, w) = (x.shape()[1], x.shape()[2]);
        let (oh, ow) = (h - kh + 1, w - kw + 1);
        assert_eq!(g.shape(), &[nf, oh, ow], "conv gradient shape mismatch");
        let mut dx = Tensor::zeros(vec![nc, h, w]);
        let xd = x.data();
        let fd = self.filters.data();
        let gd = g.data();
        let gfd = self.gf.data_mut();
        let dxd = dx.data_mut();
        // Same loop nest as the forward reference, but the kernel-column
        // loop runs over contiguous kw-length slices of the image row, the
        // filter row, and their gradients, so the hot loop is two
        // bounds-check-free fused multiply-adds per tap.
        for f in 0..nf {
            let mut bsum = 0.0;
            for oy in 0..oh {
                let grow = &gd[(f * oh + oy) * ow..(f * oh + oy + 1) * ow];
                for (ox, &go) in grow.iter().enumerate() {
                    if go == 0.0 {
                        continue;
                    }
                    bsum += go;
                    for c in 0..nc {
                        for ky in 0..kh {
                            let xbase = (c * h + oy + ky) * w + ox;
                            let fbase = ((f * nc + c) * kh + ky) * kw;
                            let xs = &xd[xbase..xbase + kw];
                            let frow = &fd[fbase..fbase + kw];
                            let gfrow = &mut gfd[fbase..fbase + kw];
                            let dxrow = &mut dxd[xbase..xbase + kw];
                            for (((gf, dxv), &xv), &fv) in
                                gfrow.iter_mut().zip(dxrow.iter_mut()).zip(xs).zip(frow)
                            {
                                *gf += go * xv;
                                *dxv += go * fv;
                            }
                        }
                    }
                }
            }
            self.gb.data_mut()[f] += bsum;
        }
        dx
    }
}

impl MaxPool2d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let xs = x.shape();
        assert_eq!(xs.len(), 3, "pool input must be rank-3");
        let (c, h, w) = (xs[0], xs[1], xs[2]);
        let (oh, ow) = (h / self.kh, w / self.kw);
        assert!(oh > 0 && ow > 0, "pool window larger than input");
        let mut y = Tensor::zeros(vec![c, oh, ow]);
        self.cache_argmax = vec![0; c * oh * ow];
        self.cache_shape = xs.to_vec();
        let xd = x.data();
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for py in 0..self.kh {
                        for px in 0..self.kw {
                            let idx = (ch * h + oy * self.kh + py) * w + ox * self.kw + px;
                            if xd[idx] > best {
                                best = xd[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let oidx = (ch * oh + oy) * ow + ox;
                    y.data_mut()[oidx] = best;
                    self.cache_argmax[oidx] = best_idx;
                }
            }
        }
        y
    }

    fn backward(&mut self, g: &Tensor) -> Tensor {
        assert!(!self.cache_shape.is_empty(), "backward before forward");
        let mut dx = Tensor::zeros(self.cache_shape.clone());
        for (oidx, &iidx) in self.cache_argmax.iter().enumerate() {
            dx.data_mut()[iidx] += g.data()[oidx];
        }
        dx
    }
}

impl Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_mask = x.data().iter().map(|&v| v > 0.0).collect();
        let mut y = x.clone();
        y.map_inplace(|v| v.max(0.0));
        y
    }

    fn backward(&mut self, g: &Tensor) -> Tensor {
        assert_eq!(g.len(), self.cache_mask.len(), "backward before forward");
        let mut dx = g.clone();
        for (v, &m) in dx.data_mut().iter_mut().zip(&self.cache_mask) {
            if !m {
                *v = 0.0;
            }
        }
        dx
    }
}

impl Flatten {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_shape = x.shape().to_vec();
        x.clone().reshape(vec![x.len()])
    }

    fn backward(&mut self, g: &Tensor) -> Tensor {
        assert!(!self.cache_shape.is_empty(), "backward before forward");
        g.clone().reshape(self.cache_shape.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn dense_forward_matches_manual() {
        let w = Tensor::from_vec(vec![2, 3], vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
        let b = Tensor::from_vec(vec![2], vec![0.1, -0.1]);
        let mut l = Layer::dense_from(w, b);
        let y = l.forward(&Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]));
        assert!((y.data()[0] - (1.0 - 3.0 + 0.1)).abs() < 1e-6);
        assert!((y.data()[1] - (0.5 + 1.0 + 1.5 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn conv_forward_matches_manual() {
        // 1 filter, 1 channel, 2x2 kernel of ones over a 3x3 ramp.
        let f = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]);
        let b = Tensor::from_vec(vec![1], vec![0.0]);
        let mut l = Layer::conv2d_from(f, b);
        let x = Tensor::from_vec(vec![1, 3, 3], (0..9).map(|i| i as f32).collect());
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let mut l = Layer::maxpool(2);
        let x = Tensor::from_vec(vec![1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 6.0]);
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[5.0, 6.0]);
        // Gradient routes only to the max positions.
        let dx = l.backward(&Tensor::from_vec(vec![1, 1, 2], vec![1.0, 2.0]));
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_clamps_and_gates_gradient() {
        let mut l = Layer::relu();
        let y = l.forward(&Tensor::from_vec(vec![3], vec![-1.0, 0.5, 2.0]));
        assert_eq!(y.data(), &[0.0, 0.5, 2.0]);
        let dx = l.backward(&Tensor::from_vec(vec![3], vec![1.0, 1.0, 1.0]));
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn flatten_roundtrips_shape() {
        let mut l = Layer::flatten();
        let y = l.forward(&Tensor::zeros(vec![2, 3, 4]));
        assert_eq!(y.shape(), &[24]);
        let dx = l.backward(&Tensor::zeros(vec![24]));
        assert_eq!(dx.shape(), &[2, 3, 4]);
    }

    #[test]
    fn output_shape_inference() {
        let mut r = rng();
        let conv = Layer::conv2d(20, 1, 5, 5, &mut r);
        assert_eq!(conv.output_shape(&[1, 28, 28]), vec![20, 24, 24]);
        let pool = Layer::maxpool(2);
        assert_eq!(pool.output_shape(&[20, 24, 24]), vec![20, 12, 12]);
        let dense = Layer::dense(200, 10, &mut r);
        assert_eq!(dense.output_shape(&[200]), vec![10]);
    }

    #[test]
    fn macs_count_skips_zeros() {
        let f = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tensor::from_vec(vec![1], vec![0.0]);
        let l = Layer::conv2d_from(f, b);
        // 2 nonzeros * 2x2 output positions = 8 MACs.
        assert_eq!(l.macs(&[1, 3, 3]), 8);
        assert_eq!(l.nonzero_params(), 3); // 2 weights + 1 bias
        assert_eq!(l.dense_params(), 5);
    }

    #[test]
    fn set_mask_zeroes_weights_and_sticks() {
        let w = Tensor::from_vec(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::zeros(vec![1]);
        let mut l = Layer::dense_from(w, b);
        l.set_mask(Tensor::from_vec(vec![1, 4], vec![1.0, 0.0, 1.0, 0.0]));
        if let Layer::Dense(d) = &l {
            assert_eq!(d.w.data(), &[1.0, 0.0, 3.0, 0.0]);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn describe_is_informative() {
        let mut r = rng();
        assert_eq!(
            Layer::conv2d(20, 1, 5, 5, &mut r).describe(),
            "conv 20x1x5x5"
        );
        assert_eq!(Layer::dense(1600, 200, &mut r).describe(), "fc 200x1600");
        assert_eq!(Layer::maxpool(2).describe(), "maxpool 2x2");
    }

    /// Finite-difference gradient check for every parameterized layer and
    /// for the input gradient. This is the test that pins down backprop
    /// correctness, which everything GENESIS does depends on.
    #[test]
    fn gradient_check_dense_and_conv() {
        let mut r = rng();
        let eps = 1e-3f32;
        let tol = 2e-2f32;

        // A small conv -> relu -> flatten -> dense stack; loss = sum(output).
        let mut layers = vec![
            Layer::conv2d(2, 1, 3, 3, &mut r),
            Layer::relu(),
            Layer::flatten(),
            Layer::dense(2 * 4 * 4, 3, &mut r),
        ];
        let x = Tensor::uniform(vec![1, 6, 6], 1.0, &mut r);

        let loss = |layers: &mut Vec<Layer>, x: &Tensor| -> f32 {
            let mut t = x.clone();
            for l in layers.iter_mut() {
                t = l.forward(&t);
            }
            t.data().iter().sum()
        };

        // Analytic gradients.
        let base = loss(&mut layers, &x);
        assert!(base.is_finite());
        let out_len = 3;
        let g = Tensor::from_vec(vec![out_len], vec![1.0; out_len]);
        let mut grad = g;
        for l in layers.iter_mut().rev() {
            grad = l.backward(&grad);
        }

        // Check a sample of parameter gradients in each layer.
        for li in [0usize, 3] {
            let mut analytic: Vec<f32> = Vec::new();
            layers[li].visit_params(&mut |p| {
                analytic.extend_from_slice(p.grads);
            });
            // Probe a handful of parameters per tensor.
            let mut offset = 0;
            let probes: Vec<usize> = vec![0, 1, analytic.len() / 2, analytic.len() - 1];
            let mut param_lens: Vec<usize> = Vec::new();
            layers[li].visit_params(&mut |p| param_lens.push(p.values.len()));
            let _ = offset; // parameters are probed through the flat view below
            for &pi in &probes {
                // Locate tensor + index for this flat probe.
                let mut remaining = pi;
                let mut tensor_idx = 0;
                for (ti, &len) in param_lens.iter().enumerate() {
                    if remaining < len {
                        tensor_idx = ti;
                        break;
                    }
                    remaining -= len;
                }
                let perturb = |layers: &mut Vec<Layer>, delta: f32| {
                    let mut seen = 0;
                    layers[li].visit_params(&mut |p| {
                        if seen == tensor_idx {
                            p.values[remaining] += delta;
                        }
                        seen += 1;
                    });
                };
                perturb(&mut layers, eps);
                let plus = loss(&mut layers, &x);
                perturb(&mut layers, -2.0 * eps);
                let minus = loss(&mut layers, &x);
                perturb(&mut layers, eps);
                let numeric = (plus - minus) / (2.0 * eps);
                let got = analytic[pi];
                assert!(
                    (numeric - got).abs() <= tol * (1.0 + numeric.abs().max(got.abs())),
                    "layer {li} param {pi}: numeric {numeric} vs analytic {got}"
                );
            }
            offset += 1;
            let _ = offset;
        }

        // Input gradient check at a few positions.
        for idx in [0usize, 7, 20, 35] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let plus = loss(&mut layers, &xp);
            xp.data_mut()[idx] -= 2.0 * eps;
            let minus = loss(&mut layers, &xp);
            let numeric = (plus - minus) / (2.0 * eps);
            let got = grad.data()[idx];
            assert!(
                (numeric - got).abs() <= tol * (1.0 + numeric.abs().max(got.abs())),
                "input {idx}: numeric {numeric} vs analytic {got}"
            );
        }
        let _ = base;
    }
}
