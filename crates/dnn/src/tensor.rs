//! Dense row-major `f32` tensors.

use rand::Rng;
use std::fmt;

/// A dense tensor with row-major layout.
///
/// Shapes follow the (channels, height, width) convention for 3-D data;
/// vectors are rank-1. All layer code works on flat slices plus explicit
/// stride arithmetic, so `Tensor` stays deliberately small.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty.
    pub fn zeros(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        let len = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expect,
            "data length {} != shape product {expect}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A tensor with elements drawn uniformly from `[-scale, scale]`.
    pub fn uniform<R: Rng>(shape: Vec<usize>, scale: f32, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.gen_range(-scale..=scale)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has zero elements (shape with a zero dim).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of the same element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(self.data.len(), expect, "reshape changes element count");
        self.shape = shape;
        self
    }

    /// Element at a 3-D index (c, h, w).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-3 or the index is out of bounds.
    #[inline]
    pub fn at3(&self, c: usize, h: usize, w: usize) -> f32 {
        assert_eq!(self.shape.len(), 3, "at3 requires a rank-3 tensor");
        let (ch, hh, ww) = (self.shape[0], self.shape[1], self.shape[2]);
        assert!(c < ch && h < hh && w < ww, "index out of bounds");
        self.data[(c * hh + h) * ww + w]
    }

    /// The index of the maximum element (ties to the lowest index).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Largest absolute value (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(f, "data=[{} elems])", self.data.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_has_correct_shape_and_len() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn at3_uses_row_major_strides() {
        let t = Tensor::from_vec(vec![2, 2, 3], (0..12).map(|i| i as f32).collect());
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(0, 1, 2), 5.0);
        assert_eq!(t.at3(1, 0, 0), 6.0);
        assert_eq!(t.at3(1, 1, 1), 10.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![6], (0..6).map(|i| i as f32).collect());
        let r = t.reshape(vec![2, 3]);
        assert_eq!(r.shape(), &[2, 3]);
        assert_eq!(r.data()[4], 4.0);
    }

    #[test]
    #[should_panic(expected = "reshape changes element count")]
    fn reshape_validates_count() {
        let _ = Tensor::zeros(vec![4]).reshape(vec![5]);
    }

    #[test]
    fn argmax_ties_to_lowest_index() {
        let t = Tensor::from_vec(vec![4], vec![0.5, 2.0, 2.0, -1.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Tensor::uniform(vec![100], 0.3, &mut rng);
        assert!(a.data().iter().all(|v| v.abs() <= 0.3));
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
        let b = Tensor::uniform(vec![100], 0.3, &mut rng2);
        assert_eq!(a, b, "seeded generation must be deterministic");
    }

    #[test]
    fn max_abs_and_map() {
        let mut t = Tensor::from_vec(vec![3], vec![-2.0, 0.5, 1.0]);
        assert_eq!(t.max_abs(), 2.0);
        t.map_inplace(|v| v * 0.5);
        assert_eq!(t.data(), &[-1.0, 0.25, 0.5]);
    }

    #[test]
    fn debug_output_is_compact_for_large_tensors() {
        let t = Tensor::zeros(vec![100]);
        let s = format!("{t:?}");
        assert!(s.contains("100 elems"));
    }
}
