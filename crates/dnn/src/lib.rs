//! Neural-network substrate for the SONIC & TAILS reproduction.
//!
//! The paper deploys three trained, compressed DNNs (MNIST image
//! recognition, human-activity recognition, and keyword spotting) on an
//! energy-harvesting MCU. Reproducing that end-to-end requires everything
//! a small ML framework provides, built here from scratch:
//!
//! - [`tensor`]: dense row-major `f32` tensors.
//! - [`layers`]: dense/convolutional/pooling/activation layers with both
//!   forward *and backward* passes, so networks (and GENESIS's
//!   re-training after compression) train entirely in-repo.
//! - [`model`]: a sequential network, parameter visitation, inference.
//! - [`train`]: minibatch SGD with momentum and cross-entropy loss.
//! - [`data`]: deterministic synthetic datasets with the same shapes and
//!   class structure as the paper's MNIST / HAR / OkG workloads (the real
//!   datasets and trained checkpoints are a data gate; see DESIGN.md §1).
//! - [`quant`]: post-training quantization to Q1.15 with per-layer
//!   power-of-two scaling — the deployable form SONIC & TAILS execute.
//! - [`sparse`]: CSR matrices and sparse filter lists for pruned layers.
//! - [`metrics`]: accuracy and true-positive/negative rates (the `tp`/`tn`
//!   of the paper's IMpJ model).
//! - [`codec`]: a compact self-contained binary format for caching trained
//!   models on disk.
//!
//! # Example
//!
//! ```
//! use dnn::layers::Layer;
//! use dnn::model::Model;
//! use dnn::tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut model = Model::new(vec![
//!     Layer::dense(4, 3, &mut rng),
//!     Layer::relu(),
//!     Layer::dense(3, 2, &mut rng),
//! ]);
//! let logits = model.forward(&Tensor::from_vec(vec![4], vec![0.1, 0.2, 0.3, 0.4]));
//! assert_eq!(logits.shape(), &[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod data;
pub mod im2col;
pub mod layers;
pub mod metrics;
pub mod model;
pub mod quant;
pub mod sparse;
pub mod tensor;
pub mod train;

pub use layers::Layer;
pub use model::Model;
pub use tensor::Tensor;
