//! Datasets, including deterministic synthetic stand-ins for the paper's
//! three workloads.
//!
//! The paper evaluates on MNIST, a human-activity-recognition corpus
//! (HAR), and Google keyword spotting (OkG). Those datasets and trained
//! checkpoints are a data gate for this reproduction, so this module
//! generates synthetic datasets with the *same tensor shapes, class counts,
//! and qualitative difficulty ordering* (MNIST easiest, OkG hardest — the
//! paper reaches 99% / 88% / 84%). Difficulty is controlled by construction:
//! class-overlap, jitter, and noise parameters are tuned per generator so
//! the in-repo trained networks land near the paper's accuracies.
//!
//! All generators are deterministic functions of a seed.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled classification dataset with fixed input shape.
#[derive(Clone, Debug)]
pub struct Dataset {
    shape: Vec<usize>,
    inputs: Vec<Vec<f32>>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, any input has the wrong size, or any
    /// label is out of range.
    pub fn new(
        shape: Vec<usize>,
        inputs: Vec<Vec<f32>>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
        let n: usize = shape.iter().product();
        for x in &inputs {
            assert_eq!(x.len(), n, "input size does not match shape");
        }
        for &l in &labels {
            assert!(l < num_classes, "label {l} out of range {num_classes}");
        }
        Dataset {
            shape,
            inputs,
            labels,
            num_classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when there are no examples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The input tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Example `i` as a tensor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input(&self, i: usize) -> Tensor {
        Tensor::from_vec(self.shape.clone(), self.inputs[i].clone())
    }

    /// Label of example `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Splits into (train, test) with `train_frac` of examples in train.
    /// Examples are interleaved by class construction, so a simple prefix
    /// split preserves class balance.
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is not in `(0, 1)`.
    pub fn split(self, train_frac: f64) -> (Dataset, Dataset) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train_frac must be in (0,1)"
        );
        let n_train = ((self.inputs.len() as f64) * train_frac).round() as usize;
        let (xi_tr, xi_te) = {
            let mut a = self.inputs;
            let b = a.split_off(n_train.min(a.len()));
            (a, b)
        };
        let (y_tr, y_te) = {
            let mut a = self.labels;
            let b = a.split_off(n_train.min(a.len()));
            (a, b)
        };
        (
            Dataset::new(self.shape.clone(), xi_tr, y_tr, self.num_classes),
            Dataset::new(self.shape, xi_te, y_te, self.num_classes),
        )
    }
}

fn gauss(rng: &mut StdRng, sigma: f32) -> f32 {
    // Box–Muller; two uniforms, one output (sufficient here).
    let u1: f32 = rng.gen_range(1e-6..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * core::f32::consts::PI * u2).cos()
}

/// Synthetic MNIST-like digits: `[1, 28, 28]` images, 10 classes.
///
/// Each class has a fixed stroke-based glyph prototype; samples apply a
/// small translation, intensity scaling, and pixel noise. Class structure
/// is strong (like real MNIST), so a LeNet-style CNN reaches ≈99%.
pub fn synth_mnist(n: usize, seed: u64) -> Dataset {
    const H: usize = 28;
    const W: usize = 28;
    let mut proto_rng = StdRng::seed_from_u64(seed ^ 0x6d6e_6973_7431);
    // Per-class prototypes: 3 strokes of a constrained random walk.
    let mut protos = Vec::with_capacity(10);
    for _class in 0..10 {
        let mut img = vec![0.0f32; H * W];
        for _stroke in 0..3 {
            let mut y = proto_rng.gen_range(6..22);
            let mut x = proto_rng.gen_range(6..22);
            let (mut dy, mut dx) = (
                proto_rng.gen_range(-1..=1i32),
                proto_rng.gen_range(-1..=1i32),
            );
            for _step in 0..14 {
                for (oy, ox) in [(0, 0), (0, 1), (1, 0)] {
                    let (py, px) = (y + oy, x + ox);
                    if (0..H as i32).contains(&py) && (0..W as i32).contains(&px) {
                        img[(py as usize) * W + px as usize] = 1.0;
                    }
                }
                if proto_rng.gen_bool(0.3) {
                    dy = proto_rng.gen_range(-1..=1);
                    dx = proto_rng.gen_range(-1..=1);
                }
                y = (y + dy).clamp(4, H as i32 - 5);
                x = (x + dx).clamp(4, W as i32 - 5);
            }
        }
        protos.push(img);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 10;
        let proto = &protos[class];
        let (sy, sx) = (rng.gen_range(-2..=2i32), rng.gen_range(-2..=2i32));
        let gain = rng.gen_range(0.7..1.0f32);
        let mut img = vec![0.0f32; H * W];
        for y in 0..H as i32 {
            for x in 0..W as i32 {
                let (py, px) = (y - sy, x - sx);
                let v = if (0..H as i32).contains(&py) && (0..W as i32).contains(&px) {
                    proto[(py as usize) * W + px as usize]
                } else {
                    0.0
                };
                let noisy = v * gain + gauss(&mut rng, 0.12);
                img[(y as usize) * W + x as usize] = noisy.clamp(0.0, 0.999);
            }
        }
        inputs.push(img);
        labels.push(class);
    }
    Dataset::new(vec![1, H, W], inputs, labels, 10)
}

/// Synthetic human-activity recognition: `[3, 1, 61]` accelerometer
/// windows (3 axes × 61 samples), 6 classes.
///
/// Dynamic activities are sinusoid mixtures whose frequency/amplitude
/// signatures partially overlap (walking vs. stairs), static activities
/// differ mainly in gravity orientation with small tremor — yielding
/// HAR-like difficulty (≈88%).
pub fn synth_har(n: usize, seed: u64) -> Dataset {
    const LEN: usize = 61;
    const CH: usize = 3;
    // (base-freq, per-axis amplitude, gravity bias) per class:
    // walking, walking-upstairs, walking-downstairs, sitting, standing, laying.
    const FREQ: [f32; 6] = [0.09, 0.105, 0.115, 0.0, 0.0, 0.0];
    const AMP: [[f32; 3]; 6] = [
        [0.45, 0.30, 0.20],
        [0.42, 0.36, 0.22], // deliberately close to walking
        [0.50, 0.28, 0.30],
        [0.02, 0.02, 0.02],
        [0.03, 0.02, 0.02], // deliberately close to sitting
        [0.02, 0.02, 0.03],
    ];
    const GRAV: [[f32; 3]; 6] = [
        [0.0, 0.0, 0.55],
        [0.05, 0.0, 0.55],
        [-0.05, 0.0, 0.55],
        [0.30, 0.10, 0.40],
        [0.0, 0.0, 0.58],
        [0.55, 0.0, 0.05],
    ];
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0068_6172);
    let mut inputs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 6;
        let phase: f32 = rng.gen_range(0.0..core::f32::consts::TAU);
        let fjit = rng.gen_range(-0.006..0.006f32);
        let mut x = vec![0.0f32; CH * LEN];
        for ch in 0..CH {
            let harm_phase: f32 = rng.gen_range(0.0..core::f32::consts::TAU);
            for t in 0..LEN {
                let tt = t as f32;
                let w = core::f32::consts::TAU * (FREQ[class] + fjit) * tt;
                let fundamental = AMP[class][ch] * (w + phase + ch as f32 * 0.8).sin();
                let harmonic = 0.3 * AMP[class][ch] * (2.0 * w + harm_phase).sin();
                let v = GRAV[class][ch] + fundamental + harmonic + gauss(&mut rng, 0.05);
                x[ch * LEN + t] = v.clamp(-0.999, 0.999);
            }
        }
        inputs.push(x);
        labels.push(class);
    }
    Dataset::new(vec![CH, 1, LEN], inputs, labels, 6)
}

/// Synthetic keyword spotting: `[1, 98, 34]` spectrograms (98 mel bins ×
/// 34 frames), 12 classes (10 keywords + silence + unknown).
///
/// Keywords are formant-ridge patterns with onset/frequency jitter; the
/// "unknown" class draws fresh random ridge patterns per sample, which —
/// like real open-vocabulary audio — caps achievable accuracy (≈84%).
pub fn synth_okg(n: usize, seed: u64) -> Dataset {
    const NBINS: usize = 98;
    const NFRAMES: usize = 34;
    const SILENCE: usize = 10;
    const UNKNOWN: usize = 11;
    let mut proto_rng = StdRng::seed_from_u64(seed ^ 0x006f_6b67);
    // Keyword prototypes: 3 formant tracks (start bin, slope).
    let mut protos: Vec<[(f32, f32); 3]> = Vec::with_capacity(10);
    for _ in 0..10 {
        protos.push([
            (
                proto_rng.gen_range(8.0..34.0f32),
                proto_rng.gen_range(-0.7..0.7f32),
            ),
            (
                proto_rng.gen_range(36.0..62.0f32),
                proto_rng.gen_range(-0.9..0.9f32),
            ),
            (
                proto_rng.gen_range(64.0..88.0f32),
                proto_rng.gen_range(-1.1..1.1f32),
            ),
        ]);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 12;
        let mut spec = vec![0.0f32; NBINS * NFRAMES];
        // Noise floor everywhere.
        for v in spec.iter_mut() {
            *v = gauss(&mut rng, 0.05).abs();
        }
        if class != SILENCE {
            let tracks: [(f32, f32); 3] = if class == UNKNOWN {
                [
                    (rng.gen_range(8.0..34.0), rng.gen_range(-0.9..0.9)),
                    (rng.gen_range(36.0..62.0), rng.gen_range(-1.1..1.1)),
                    (rng.gen_range(64.0..88.0), rng.gen_range(-1.3..1.3)),
                ]
            } else {
                protos[class]
            };
            let onset = rng.gen_range(2..8usize);
            let duration = rng.gen_range(18..24usize);
            let bin_jitter: f32 = rng.gen_range(-2.0..2.0);
            let energy = rng.gen_range(0.55..0.9f32);
            for (f0, slope) in tracks {
                for t in 0..duration.min(NFRAMES - onset) {
                    let center = f0 + bin_jitter + slope * t as f32;
                    for db in -1..=1i32 {
                        let b = (center + db as f32).round() as i32;
                        if (0..NBINS as i32).contains(&b) {
                            let fade = 1.0 - (db.abs() as f32) * 0.45;
                            let idx = (b as usize) * NFRAMES + onset + t;
                            spec[idx] = (spec[idx] + energy * fade).min(0.999);
                        }
                    }
                }
            }
        }
        inputs.push(spec);
        labels.push(class);
    }
    Dataset::new(vec![1, NBINS, NFRAMES], inputs, labels, 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_validates_inputs() {
        let d = Dataset::new(vec![2], vec![vec![1.0, 2.0]], vec![0], 2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.input(0).data(), &[1.0, 2.0]);
        assert_eq!(d.label(0), 0);
        assert_eq!(d.num_classes(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "label")]
    fn dataset_rejects_out_of_range_labels() {
        let _ = Dataset::new(vec![1], vec![vec![0.0]], vec![5], 2);
    }

    #[test]
    fn split_preserves_examples() {
        let d = synth_mnist(100, 7);
        let (tr, te) = d.split(0.8);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        assert_eq!(tr.shape(), te.shape());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = synth_har(24, 5);
        let b = synth_har(24, 5);
        assert_eq!(a.input(7).data(), b.input(7).data());
        let c = synth_har(24, 6);
        assert_ne!(a.input(7).data(), c.input(7).data());
    }

    #[test]
    fn mnist_shape_and_range() {
        let d = synth_mnist(20, 1);
        assert_eq!(d.shape(), &[1, 28, 28]);
        assert_eq!(d.num_classes(), 10);
        for i in 0..d.len() {
            assert!(d.input(i).data().iter().all(|&v| (0.0..1.0).contains(&v)));
        }
        // Class labels round-robin.
        assert_eq!(d.label(0), 0);
        assert_eq!(d.label(13), 3);
    }

    #[test]
    fn har_shape_and_range() {
        let d = synth_har(12, 2);
        assert_eq!(d.shape(), &[3, 1, 61]);
        assert_eq!(d.num_classes(), 6);
        for i in 0..d.len() {
            assert!(d.input(i).data().iter().all(|&v| v.abs() < 1.0));
        }
    }

    #[test]
    fn okg_shape_and_classes() {
        let d = synth_okg(24, 3);
        assert_eq!(d.shape(), &[1, 98, 34]);
        assert_eq!(d.num_classes(), 12);
        // Silence samples carry much less energy than keyword samples.
        let silence: f32 = d.input(10).data().iter().sum();
        let keyword: f32 = d.input(0).data().iter().sum();
        assert!(silence < keyword, "silence should be quieter than keywords");
    }

    #[test]
    fn classes_are_separable_by_construction() {
        // Nearest-centroid accuracy should be well above chance for MNIST
        // (it is a sanity check that classes carry signal, not a model test).
        let d = synth_mnist(200, 9);
        let dim: usize = d.shape().iter().product();
        let mut centroids = vec![vec![0.0f64; dim]; 10];
        let mut counts = [0usize; 10];
        for i in 0..100 {
            let c = d.label(i);
            counts[c] += 1;
            for (j, &v) in d.input(i).data().iter().enumerate() {
                centroids[c][j] += v as f64;
            }
        }
        for (c, cent) in centroids.iter_mut().enumerate() {
            for v in cent.iter_mut() {
                *v /= counts[c].max(1) as f64;
            }
        }
        let mut correct = 0;
        for i in 100..200 {
            let x = d.input(i);
            let mut best = (f64::INFINITY, 0usize);
            for (c, cent) in centroids.iter().enumerate() {
                let dist: f64 = x
                    .data()
                    .iter()
                    .zip(cent)
                    .map(|(&a, &b)| (a as f64 - b).powi(2))
                    .sum();
                if dist < best.0 {
                    best = (dist, c);
                }
            }
            if best.1 == d.label(i) {
                correct += 1;
            }
        }
        assert!(correct > 60, "nearest-centroid got only {correct}/100");
    }
}
