//! Training: minibatch SGD with momentum and softmax cross-entropy.
//!
//! GENESIS re-trains every compressed configuration (§5.2), so the trainer
//! must respect pruning masks: masked weights receive updates of zero and
//! stay exactly 0.0, which keeps the deployed sparse kernels sparse.

use crate::data::Dataset;
use crate::model::Model;
use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Softmax + cross-entropy: returns `(loss, dlogits)`.
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, label: usize) -> (f32, Tensor) {
    let n = logits.len();
    assert!(label < n, "label {label} out of range {n}");
    let max = logits
        .data()
        .iter()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.data().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let mut dlogits = Tensor::zeros(vec![n]);
    for (i, e) in exps.iter().enumerate() {
        dlogits.data_mut()[i] = e / sum;
    }
    let loss = -(exps[label] / sum).max(1e-12).ln();
    dlogits.data_mut()[label] -= 1.0;
    (loss, dlogits)
}

/// SGD-with-momentum optimizer. Velocity buffers are laid out in the
/// model's stable parameter-visit order.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocities: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer for `model`.
    pub fn new(model: &mut Model, lr: f32, momentum: f32) -> Self {
        let mut velocities = Vec::new();
        model.visit_params(&mut |p| velocities.push(vec![0.0; p.values.len()]));
        Sgd {
            lr,
            momentum,
            velocities,
        }
    }

    /// Applies one step from the accumulated gradients (scaled by
    /// `1/batch`), then clears them. Masked weights stay zero.
    pub fn step(&mut self, model: &mut Model, batch: usize) {
        let scale = 1.0 / batch.max(1) as f32;
        let (lr, mu) = (self.lr, self.momentum);
        let mut idx = 0;
        let velocities = &mut self.velocities;
        model.visit_params(&mut |p| {
            let vel = &mut velocities[idx];
            for i in 0..p.values.len() {
                let g = p.grads[i] * scale;
                vel[i] = mu * vel[i] - lr * g;
                p.values[i] += vel[i];
                if let Some(mask) = p.mask {
                    if mask[i] == 0.0 {
                        p.values[i] = 0.0;
                        vel[i] = 0.0;
                    }
                }
                p.grads[i] = 0.0;
            }
            idx += 1;
        });
    }
}

/// Training configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch: 16,
            lr: 0.05,
            momentum: 0.9,
            seed: 0x50_4e_1c,
        }
    }
}

/// Trains `model` on `data`, returning the mean loss of each epoch.
///
/// # Panics
///
/// Panics if the dataset is empty or shapes are inconsistent.
pub fn train(model: &mut Model, data: &Dataset, cfg: &TrainConfig) -> Vec<f32> {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut opt = Sgd::new(model, cfg.lr, cfg.momentum);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut in_batch = 0;
        for &i in &order {
            let x = data.input(i);
            let logits = model.forward(&x);
            let (loss, dlogits) = softmax_cross_entropy(&logits, data.label(i));
            epoch_loss += loss;
            model.backward(&dlogits);
            in_batch += 1;
            if in_batch == cfg.batch {
                opt.step(model, in_batch);
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            opt.step(model, in_batch);
        }
        losses.push(epoch_loss / data.len() as f32);
    }
    losses
}

/// Classification accuracy of `model` on `data`, in `[0, 1]`.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn accuracy(model: &mut Model, data: &Dataset) -> f64 {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let mut correct = 0usize;
    for i in 0..data.len() {
        if model.predict(&data.input(i)) == data.label(i) {
            correct += 1;
        }
    }
    correct as f64 / data.len() as f64
}

use rand::SeedableRng;

/// Generates a linearly-separable toy dataset for trainer tests.
pub fn toy_blobs(n_per_class: usize, classes: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    // Well-separated class centers on coordinate axes. Classes are
    // interleaved (label = i mod classes) so that the prefix split of
    // [`Dataset::split`] stays class-balanced.
    for i in 0..n_per_class * classes {
        let c = i % classes;
        let mut x = vec![0.0f32; dim];
        for (j, v) in x.iter_mut().enumerate() {
            *v = if j % classes == c { 0.8 } else { 0.0 } + rng.gen_range(-0.15..0.15);
        }
        inputs.push(x);
        labels.push(c);
    }
    Dataset::new(vec![dim], inputs, labels, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Layer;

    #[test]
    fn softmax_ce_gradient_sums_to_zero() {
        let logits = Tensor::from_vec(vec![3], vec![1.0, 2.0, 0.5]);
        let (loss, g) = softmax_cross_entropy(&logits, 1);
        assert!(loss > 0.0);
        let s: f32 = g.data().iter().sum();
        assert!(s.abs() < 1e-5, "gradient must sum to 0, got {s}");
        // The true-label entry must be negative (we push its logit up).
        assert!(g.data()[1] < 0.0);
    }

    #[test]
    fn softmax_ce_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![2], vec![1000.0, -1000.0]);
        let (loss, g) = softmax_cross_entropy(&logits, 0);
        assert!(loss.is_finite() && loss >= 0.0);
        assert!(g.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_fits_separable_blobs() {
        let data = toy_blobs(40, 3, 6, 9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut model = Model::new(vec![
            Layer::dense(6, 16, &mut rng),
            Layer::relu(),
            Layer::dense(16, 3, &mut rng),
        ]);
        let losses = train(&mut model, &data, &TrainConfig::default());
        assert!(
            losses.last().unwrap() < &0.2,
            "loss should drop; got {losses:?}"
        );
        assert!(
            accuracy(&mut model, &data) > 0.95,
            "separable data should be fit"
        );
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let data = toy_blobs(30, 2, 4, 11);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut model = Model::new(vec![Layer::dense(4, 2, &mut rng)]);
        let losses = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 8,
                ..TrainConfig::default()
            },
        );
        assert!(losses.first().unwrap() > losses.last().unwrap());
    }

    #[test]
    fn masked_weights_stay_zero_through_training() {
        let data = toy_blobs(20, 2, 4, 13);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut model = Model::new(vec![Layer::dense(4, 2, &mut rng)]);
        let mask = Tensor::from_vec(vec![2, 4], vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0]);
        model.layers_mut()[0].set_mask(mask.clone());
        train(&mut model, &data, &TrainConfig::default());
        if let Layer::Dense(d) = &model.layers()[0] {
            for (w, m) in d.w.data().iter().zip(mask.data()) {
                if *m == 0.0 {
                    assert_eq!(*w, 0.0, "masked weight drifted");
                }
            }
        } else {
            unreachable!();
        }
    }

    #[test]
    fn sgd_momentum_accelerates_along_consistent_gradients() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut model = Model::new(vec![Layer::dense(1, 1, &mut rng)]);
        let mut opt = Sgd::new(&mut model, 0.1, 0.9);
        // Apply the same gradient twice: with momentum, the second step is
        // larger than the first.

        let mut w0 = 0.0;
        model.visit_params(&mut |p| {
            if p.values.len() == 1 && w0 == 0.0 {
                w0 = p.values[0];
            }
        });
        let set_grad = |model: &mut Model| {
            model.visit_params(&mut |p| {
                for g in p.grads.iter_mut() {
                    *g = 1.0;
                }
            })
        };
        set_grad(&mut model);
        opt.step(&mut model, 1);
        let mut w1 = 0.0;
        let mut seen = false;
        model.visit_params(&mut |p| {
            if !seen {
                w1 = p.values[0];
                seen = true;
            }
        });
        let first_step = (w1 - w0).abs();
        set_grad(&mut model);
        opt.step(&mut model, 1);
        let mut w2 = 0.0;
        let mut seen = false;
        model.visit_params(&mut |p| {
            if !seen {
                w2 = p.values[0];
                seen = true;
            }
        });
        let second_step = (w2 - w1).abs();
        assert!(
            second_step > first_step,
            "momentum should grow steps: {first_step} vs {second_step}"
        );
    }
}
