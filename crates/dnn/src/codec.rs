//! A compact self-contained binary codec for trained models.
//!
//! Training the paper's networks takes minutes; the experiment harness
//! caches trained models under `target/` so figures regenerate quickly.
//! The format is deliberately simple (magic, version, layer records with
//! little-endian `f32` payloads) to avoid pulling a serialization
//! dependency into the public API.

use crate::layers::Layer;
use crate::model::Model;
use crate::tensor::Tensor;
use std::fmt;
use std::path::Path;

const MAGIC: &[u8; 4] = b"SDNN";
const VERSION: u8 = 1;

const TAG_DENSE: u8 = 0;
const TAG_CONV: u8 = 1;
const TAG_POOL: u8 = 2;
const TAG_RELU: u8 = 3;
const TAG_FLATTEN: u8 = 4;

/// Decoding failures.
#[derive(Debug)]
pub enum CodecError {
    /// The buffer does not start with the expected magic/version.
    BadHeader,
    /// An unknown layer tag was encountered.
    BadTag(u8),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// An underlying I/O error (file helpers only).
    Io(std::io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadHeader => f.write_str("bad model file header"),
            CodecError::BadTag(t) => write!(f, "unknown layer tag {t}"),
            CodecError::Truncated => f.write_str("model file truncated"),
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32s(&mut self, vs: &[f32]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        let end = self.pos + 4;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
    fn f32s(&mut self) -> Result<Vec<f32>, CodecError> {
        let n = self.u32()? as usize;
        let end = self.pos + 4 * n;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

/// Serializes a model to bytes.
pub fn to_bytes(model: &Model) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(1024),
    };
    w.buf.extend_from_slice(MAGIC);
    w.u8(VERSION);
    w.u32(model.layers().len() as u32);
    for l in model.layers() {
        match l {
            Layer::Dense(d) => {
                w.u8(TAG_DENSE);
                w.u32(d.w.shape()[0] as u32);
                w.u32(d.w.shape()[1] as u32);
                w.f32s(d.w.data());
                w.f32s(d.b.data());
            }
            Layer::Conv2d(c) => {
                w.u8(TAG_CONV);
                for &dim in c.filters.shape() {
                    w.u32(dim as u32);
                }
                w.f32s(c.filters.data());
                w.f32s(c.bias.data());
            }
            Layer::MaxPool2d(p) => {
                w.u8(TAG_POOL);
                w.u32(p.kh as u32);
                w.u32(p.kw as u32);
            }
            Layer::Relu(_) => w.u8(TAG_RELU),
            Layer::Flatten(_) => w.u8(TAG_FLATTEN),
        }
    }
    w.buf
}

/// Deserializes a model from bytes produced by [`to_bytes`].
///
/// # Errors
///
/// Returns a [`CodecError`] for malformed input.
pub fn from_bytes(bytes: &[u8]) -> Result<Model, CodecError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = bytes.get(..4).ok_or(CodecError::Truncated)?;
    if magic != MAGIC {
        return Err(CodecError::BadHeader);
    }
    r.pos = 4;
    if r.u8()? != VERSION {
        return Err(CodecError::BadHeader);
    }
    let n = r.u32()? as usize;
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        match r.u8()? {
            TAG_DENSE => {
                let out = r.u32()? as usize;
                let inp = r.u32()? as usize;
                let wdata = r.f32s()?;
                let bdata = r.f32s()?;
                if wdata.len() != out * inp || bdata.len() != out {
                    return Err(CodecError::Truncated);
                }
                layers.push(Layer::dense_from(
                    Tensor::from_vec(vec![out, inp], wdata),
                    Tensor::from_vec(vec![out], bdata),
                ));
            }
            TAG_CONV => {
                let f = r.u32()? as usize;
                let c = r.u32()? as usize;
                let kh = r.u32()? as usize;
                let kw = r.u32()? as usize;
                let fdata = r.f32s()?;
                let bdata = r.f32s()?;
                if fdata.len() != f * c * kh * kw || bdata.len() != f {
                    return Err(CodecError::Truncated);
                }
                layers.push(Layer::conv2d_from(
                    Tensor::from_vec(vec![f, c, kh, kw], fdata),
                    Tensor::from_vec(vec![f], bdata),
                ));
            }
            TAG_POOL => {
                let kh = r.u32()? as usize;
                let kw = r.u32()? as usize;
                layers.push(Layer::maxpool_rect(kh, kw));
            }
            TAG_RELU => layers.push(Layer::relu()),
            TAG_FLATTEN => layers.push(Layer::flatten()),
            t => return Err(CodecError::BadTag(t)),
        }
    }
    Ok(Model::new(layers))
}

/// Saves a model to a file.
///
/// # Errors
///
/// Returns [`CodecError::Io`] on filesystem errors.
pub fn save_file(model: &Model, path: &Path) -> Result<(), CodecError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_bytes(model))?;
    Ok(())
}

/// Loads a model from a file.
///
/// # Errors
///
/// Returns a [`CodecError`] on filesystem or format errors.
pub fn load_file(path: &Path) -> Result<Model, CodecError> {
    from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_model() -> Model {
        let mut r = rand::rngs::StdRng::seed_from_u64(17);
        Model::new(vec![
            Layer::conv2d(4, 1, 3, 3, &mut r),
            Layer::relu(),
            Layer::maxpool(2),
            Layer::flatten(),
            Layer::dense(4 * 3 * 3, 5, &mut r),
        ])
    }

    fn models_equal(a: &Model, b: &Model) -> bool {
        if a.layers().len() != b.layers().len() {
            return false;
        }
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            match (la, lb) {
                (Layer::Dense(x), Layer::Dense(y)) => {
                    if x.w != y.w || x.b != y.b {
                        return false;
                    }
                }
                (Layer::Conv2d(x), Layer::Conv2d(y)) => {
                    if x.filters != y.filters || x.bias != y.bias {
                        return false;
                    }
                }
                (Layer::MaxPool2d(x), Layer::MaxPool2d(y)) => {
                    if x.kh != y.kh || x.kw != y.kw {
                        return false;
                    }
                }
                (Layer::Relu(_), Layer::Relu(_)) | (Layer::Flatten(_), Layer::Flatten(_)) => {}
                _ => return false,
            }
        }
        true
    }

    #[test]
    fn roundtrip_preserves_model() {
        let m = sample_model();
        let bytes = to_bytes(&m);
        let back = from_bytes(&bytes).unwrap();
        assert!(models_equal(&m, &back));
    }

    #[test]
    fn roundtrip_through_file() {
        let m = sample_model();
        let dir = std::env::temp_dir().join("sonic-tails-codec-test");
        let path = dir.join("model.sdnn");
        save_file(&m, &path).unwrap();
        let back = load_file(&path).unwrap();
        assert!(models_equal(&m, &back));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            from_bytes(b"XXXX\x01\x00\x00\x00\x00"),
            Err(CodecError::BadHeader)
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&sample_model());
        for cut in [4usize, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut bytes = to_bytes(&sample_model());
        // First tag byte lives right after magic(4) + version(1) + count(4).
        bytes[9] = 99;
        assert!(matches!(from_bytes(&bytes), Err(CodecError::BadTag(99))));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_file(Path::new("/nonexistent/nope.sdnn")).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
        assert!(!err.to_string().is_empty());
    }
}
