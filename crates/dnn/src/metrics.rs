//! Classification metrics, including the true-positive / true-negative
//! rates that parameterize the paper's IMpJ application model (Table 1).

use crate::data::Dataset;
use crate::model::Model;

/// A confusion matrix over `k` classes.
#[derive(Clone, Debug)]
pub struct Confusion {
    k: usize,
    counts: Vec<u64>, // counts[truth * k + pred]
}

impl Confusion {
    /// An empty matrix over `k` classes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one class");
        Confusion {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Records one prediction.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.k && pred < self.k, "class out of range");
        self.counts[truth * self.k + pred] += 1;
    }

    /// Evaluates `model` over `data` into a confusion matrix.
    pub fn from_model(model: &mut Model, data: &Dataset) -> Self {
        let mut c = Confusion::new(data.num_classes());
        for i in 0..data.len() {
            c.record(data.label(i), model.predict(&data.input(i)));
        }
        c
    }

    /// Total recorded examples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.k).map(|c| self.counts[c * self.k + c]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// True-positive rate for the binary task "is it class `interesting`?"
    /// — `P(pred == interesting | truth == interesting)`, the paper's `tp`.
    ///
    /// Returns 1.0 when no positive examples were recorded.
    pub fn tp_rate(&self, interesting: usize) -> f64 {
        assert!(interesting < self.k, "class out of range");
        let row = &self.counts[interesting * self.k..(interesting + 1) * self.k];
        let pos: u64 = row.iter().sum();
        if pos == 0 {
            1.0
        } else {
            row[interesting] as f64 / pos as f64
        }
    }

    /// True-negative rate for the binary task — `P(pred != interesting |
    /// truth != interesting)`, the paper's `tn`.
    ///
    /// Returns 1.0 when no negative examples were recorded.
    pub fn tn_rate(&self, interesting: usize) -> f64 {
        assert!(interesting < self.k, "class out of range");
        let mut neg = 0u64;
        let mut correct_neg = 0u64;
        for truth in 0..self.k {
            if truth == interesting {
                continue;
            }
            for pred in 0..self.k {
                let n = self.counts[truth * self.k + pred];
                neg += n;
                if pred != interesting {
                    correct_neg += n;
                }
            }
        }
        if neg == 0 {
            1.0
        } else {
            correct_neg as f64 / neg as f64
        }
    }

    /// Count of `(truth, pred)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, truth: usize, pred: usize) -> u64 {
        assert!(truth < self.k && pred < self.k, "class out of range");
        self.counts[truth * self.k + pred]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Confusion {
        // 3 classes; class 1 is "interesting".
        let mut c = Confusion::new(3);
        // truth 0: 8 correct, 2 predicted as 1 (false positives).
        for _ in 0..8 {
            c.record(0, 0);
        }
        for _ in 0..2 {
            c.record(0, 1);
        }
        // truth 1: 9 correct, 1 missed to class 2 (false negative).
        for _ in 0..9 {
            c.record(1, 1);
        }
        c.record(1, 2);
        // truth 2: 10 correct.
        for _ in 0..10 {
            c.record(2, 2);
        }
        c
    }

    #[test]
    fn accuracy_counts_diagonal() {
        let c = sample();
        assert_eq!(c.total(), 30);
        assert!((c.accuracy() - 27.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn tp_rate_is_recall_of_interesting_class() {
        let c = sample();
        assert!((c.tp_rate(1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn tn_rate_counts_non_interesting_correctly_rejected() {
        let c = sample();
        // Negatives: 20 samples (classes 0 and 2); 2 were predicted as class
        // 1 ⇒ tn = 18/20.
        assert!((c.tn_rate(1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rates_default_to_one() {
        let c = Confusion::new(2);
        assert_eq!(c.tp_rate(0), 1.0);
        assert_eq!(c.tn_rate(0), 1.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn count_accessor() {
        let c = sample();
        assert_eq!(c.count(0, 1), 2);
        assert_eq!(c.count(1, 2), 1);
    }
}
