//! im2col patch extraction and a cache-blocked f32 GEMM for convolutions.
//!
//! The naive convolution walks a 6-deep loop nest whose inner accesses
//! stride across the input image, paying a bounds check and an index
//! computation per multiply. The kernels here restructure that work the
//! way TAILS restructures it for the LEA (§7): gather each receptive
//! field into a *contiguous* row once ([`im2col_into`]), then reduce the
//! whole convolution to dot products of contiguous slices
//! ([`gemm_nt_bias`]) that the compiler can iterate without bounds checks.
//!
//! **Bit-exactness.** Every output element is accumulated *sequentially
//! in k order* starting from its bias — exactly the order of the naive
//! loop nest (channel, kernel-row, kernel-column). Instruction-level
//! parallelism comes from computing several independent outputs at once,
//! never from reordering one output's sum, so results are bit-identical
//! to [`conv2d_naive`] / a plain dot product. The equivalence proptests
//! in this module pin that down.
//!
//! All entry points write into caller-provided buffers; steady-state
//! inference does not allocate.

/// Output spatial size of a valid convolution.
///
/// # Panics
///
/// Panics if the kernel is larger than the input.
#[inline]
pub fn conv_out_dims(h: usize, w: usize, kh: usize, kw: usize) -> (usize, usize) {
    assert!(h >= kh && w >= kw, "conv input smaller than kernel");
    (h - kh + 1, w - kw + 1)
}

/// Gathers convolution patches into rows of a `[oh*ow, c*kh*kw]`
/// row-major matrix.
///
/// Row `p = oy*ow + ox` holds the receptive field of output position
/// `(oy, ox)` laid out in `(c, ky, kx)` order — the same order the naive
/// loop nest reduces in, and the same order filters are stored in, so a
/// filter row · patch row dot product is a contiguous × contiguous scan.
///
/// # Panics
///
/// Panics if `x` is not `c*h*w` long or the kernel exceeds the input.
pub fn im2col_into(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    patches: &mut Vec<f32>,
) {
    assert_eq!(x.len(), c * h * w, "input length mismatch");
    let (oh, ow) = conv_out_dims(h, w, kh, kw);
    let k = c * kh * kw;
    // No clear() first: every element is overwritten below, and resize()
    // alone is a no-op when the size is unchanged (steady-state reuse).
    patches.resize(oh * ow * k, 0.0);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = &mut patches[(oy * ow + ox) * k..(oy * ow + ox + 1) * k];
            let mut dst = 0;
            for cc in 0..c {
                for ky in 0..kh {
                    let src = (cc * h + oy + ky) * w + ox;
                    row[dst..dst + kw].copy_from_slice(&x[src..src + kw]);
                    dst += kw;
                }
            }
        }
    }
}

/// One output element's sequential-k dot product, seeded with `init`.
///
/// Kept sequential on purpose: reassociating the sum (e.g. 4-lane
/// partials) would change the f32 result and break bit-equivalence with
/// the reference loops.
#[inline]
fn dot_seq(init: f32, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = init;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// `C[i, j] = bias[i] + A[i, :] · B[j, :]` — a GEMM against a transposed
/// `B`, which is exactly the filter-matrix × patch-matrix product of an
/// im2col convolution (`A = filters [m, k]`, `B = patches [n, k]`).
///
/// Blocked 4 rows × 2 columns: eight independent accumulators hide FP
/// latency while each accumulator still sums its `k` terms in order (see
/// the module docs on bit-exactness). `B` rows are streamed through the
/// cache once per 4-row block of `A`.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `n`, `k`.
pub fn gemm_nt_bias(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    n: usize,
    k: usize,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), n * k, "B shape mismatch");
    assert_eq!(bias.len(), m, "bias length mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    let mut i = 0;
    while i + 4 <= m {
        let (a0, a1, a2, a3) = (
            &a[i * k..(i + 1) * k],
            &a[(i + 1) * k..(i + 2) * k],
            &a[(i + 2) * k..(i + 3) * k],
            &a[(i + 3) * k..(i + 4) * k],
        );
        let mut j = 0;
        while j + 2 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let (mut c00, mut c01) = (bias[i], bias[i]);
            let (mut c10, mut c11) = (bias[i + 1], bias[i + 1]);
            let (mut c20, mut c21) = (bias[i + 2], bias[i + 2]);
            let (mut c30, mut c31) = (bias[i + 3], bias[i + 3]);
            for kk in 0..k {
                let (x0, x1) = (b0[kk], b1[kk]);
                c00 += a0[kk] * x0;
                c01 += a0[kk] * x1;
                c10 += a1[kk] * x0;
                c11 += a1[kk] * x1;
                c20 += a2[kk] * x0;
                c21 += a2[kk] * x1;
                c30 += a3[kk] * x0;
                c31 += a3[kk] * x1;
            }
            c[i * n + j] = c00;
            c[i * n + j + 1] = c01;
            c[(i + 1) * n + j] = c10;
            c[(i + 1) * n + j + 1] = c11;
            c[(i + 2) * n + j] = c20;
            c[(i + 2) * n + j + 1] = c21;
            c[(i + 3) * n + j] = c30;
            c[(i + 3) * n + j + 1] = c31;
            j += 2;
        }
        if j < n {
            let bj = &b[j * k..(j + 1) * k];
            c[i * n + j] = dot_seq(bias[i], a0, bj);
            c[(i + 1) * n + j] = dot_seq(bias[i + 1], a1, bj);
            c[(i + 2) * n + j] = dot_seq(bias[i + 2], a2, bj);
            c[(i + 3) * n + j] = dot_seq(bias[i + 3], a3, bj);
        }
        i += 4;
    }
    while i < m {
        let ai = &a[i * k..(i + 1) * k];
        for j in 0..n {
            c[i * n + j] = dot_seq(bias[i], ai, &b[j * k..(j + 1) * k]);
        }
        i += 1;
    }
}

/// Dense matrix–vector product `y[o] = bias[o] + W[o, :] · x`, blocked
/// over four output rows (independent sequential-k accumulators).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent.
pub fn matvec_bias(w: &[f32], x: &[f32], bias: &[f32], y: &mut [f32]) {
    let (out, inp) = (bias.len(), x.len());
    assert_eq!(w.len(), out * inp, "weight shape mismatch");
    assert_eq!(y.len(), out, "output length mismatch");
    let mut o = 0;
    while o + 4 <= out {
        let (w0, w1, w2, w3) = (
            &w[o * inp..(o + 1) * inp],
            &w[(o + 1) * inp..(o + 2) * inp],
            &w[(o + 2) * inp..(o + 3) * inp],
            &w[(o + 3) * inp..(o + 4) * inp],
        );
        let mut y0 = bias[o];
        let mut y1 = bias[o + 1];
        let mut y2 = bias[o + 2];
        let mut y3 = bias[o + 3];
        for i in 0..inp {
            let xi = x[i];
            y0 += w0[i] * xi;
            y1 += w1[i] * xi;
            y2 += w2[i] * xi;
            y3 += w3[i] * xi;
        }
        y[o] = y0;
        y[o + 1] = y1;
        y[o + 2] = y2;
        y[o + 3] = y3;
        o += 4;
    }
    while o < out {
        y[o] = dot_seq(bias[o], &w[o * inp..(o + 1) * inp], x);
        o += 1;
    }
}

/// Full im2col convolution: patches into `patches` (scratch, reused
/// across calls), result into `out` (`[nf, oh, ow]` flattened).
///
/// # Panics
///
/// Panics if any buffer length is inconsistent with the shapes.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_im2col(
    x: &[f32],
    filters: &[f32],
    bias: &[f32],
    c: usize,
    h: usize,
    w: usize,
    nf: usize,
    kh: usize,
    kw: usize,
    patches: &mut Vec<f32>,
    out: &mut [f32],
) {
    let (oh, ow) = conv_out_dims(h, w, kh, kw);
    let k = c * kh * kw;
    assert_eq!(filters.len(), nf * k, "filter length mismatch");
    assert_eq!(out.len(), nf * oh * ow, "output length mismatch");
    im2col_into(x, c, h, w, kh, kw, patches);
    gemm_nt_bias(filters, patches, bias, nf, oh * ow, k, out);
}

/// The naive 6-deep loop-nest convolution — the reference the optimized
/// path must match bit-for-bit (and the baseline the `kernels` criterion
/// bench compares against).
///
/// # Panics
///
/// Panics if any buffer length is inconsistent with the shapes.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_naive(
    x: &[f32],
    filters: &[f32],
    bias: &[f32],
    c: usize,
    h: usize,
    w: usize,
    nf: usize,
    kh: usize,
    kw: usize,
    out: &mut [f32],
) {
    let (oh, ow) = conv_out_dims(h, w, kh, kw);
    assert_eq!(x.len(), c * h * w, "input length mismatch");
    assert_eq!(filters.len(), nf * c * kh * kw, "filter length mismatch");
    assert_eq!(out.len(), nf * oh * ow, "output length mismatch");
    for f in 0..nf {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias[f];
                for cc in 0..c {
                    for ky in 0..kh {
                        let xrow = (cc * h + oy + ky) * w + ox;
                        let frow = ((f * c + cc) * kh + ky) * kw;
                        for kx in 0..kw {
                            acc += x[xrow + kx] * filters[frow + kx];
                        }
                    }
                }
                out[(f * oh + oy) * ow + ox] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[allow(clippy::type_complexity)]
    fn random_case(
        seed: u64,
    ) -> (
        Vec<f32>,
        Vec<f32>,
        Vec<f32>,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
    ) {
        let mut r = rng(seed);
        let c = r.gen_range(1..4usize);
        let kh = r.gen_range(1..4usize);
        let kw = r.gen_range(1..5usize);
        let h = kh + r.gen_range(0..6usize);
        let w = kw + r.gen_range(0..6usize);
        let nf = r.gen_range(1..7usize);
        let x: Vec<f32> = (0..c * h * w).map(|_| r.gen_range(-1.0..1.0)).collect();
        let filters: Vec<f32> = (0..nf * c * kh * kw)
            .map(|_| r.gen_range(-1.0..1.0))
            .collect();
        let bias: Vec<f32> = (0..nf).map(|_| r.gen_range(-0.5..0.5)).collect();
        (x, filters, bias, c, h, w, nf, kh, kw)
    }

    #[test]
    fn im2col_rows_are_receptive_fields() {
        // 1 channel, 3x3 image, 2x2 kernel: row for output (0,0) is the
        // top-left 2x2 block in row-major order.
        let x: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let mut p = Vec::new();
        im2col_into(&x, 1, 3, 3, 2, 2, &mut p);
        assert_eq!(p.len(), 4 * 4);
        assert_eq!(&p[0..4], &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(&p[12..16], &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn gemm_matches_sequential_dot_bitwise() {
        let mut r = rng(3);
        // Sizes straddling the 4x2 blocking (remainders in both dims).
        for (m, n, k) in [(1, 1, 1), (4, 2, 8), (5, 3, 7), (9, 5, 13), (3, 2, 4)] {
            let a: Vec<f32> = (0..m * k).map(|_| r.gen_range(-1.0..1.0)).collect();
            let b: Vec<f32> = (0..n * k).map(|_| r.gen_range(-1.0..1.0)).collect();
            let bias: Vec<f32> = (0..m).map(|_| r.gen_range(-1.0..1.0)).collect();
            let mut c = vec![0.0; m * n];
            gemm_nt_bias(&a, &b, &bias, m, n, k, &mut c);
            for i in 0..m {
                for j in 0..n {
                    let want = dot_seq(bias[i], &a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    assert_eq!(c[i * n + j].to_bits(), want.to_bits(), "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn matvec_matches_sequential_dot_bitwise() {
        let mut r = rng(4);
        for (out, inp) in [(1, 3), (4, 5), (6, 8), (11, 2)] {
            let w: Vec<f32> = (0..out * inp).map(|_| r.gen_range(-1.0..1.0)).collect();
            let x: Vec<f32> = (0..inp).map(|_| r.gen_range(-1.0..1.0)).collect();
            let bias: Vec<f32> = (0..out).map(|_| r.gen_range(-1.0..1.0)).collect();
            let mut y = vec![0.0; out];
            matvec_bias(&w, &x, &bias, &mut y);
            for o in 0..out {
                let want = dot_seq(bias[o], &w[o * inp..(o + 1) * inp], &x);
                assert_eq!(y[o].to_bits(), want.to_bits(), "row {o}");
            }
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(60))]

            /// The tentpole contract: the im2col-GEMM convolution is
            /// bit-for-bit equal to the naive 6-loop reference in f32.
            #[test]
            fn im2col_gemm_conv_matches_naive_bitwise(seed in any::<u64>()) {
                let (x, filters, bias, c, h, w, nf, kh, kw) = random_case(seed);
                let (oh, ow) = conv_out_dims(h, w, kh, kw);
                let mut patches = Vec::new();
                let mut fast = vec![0.0; nf * oh * ow];
                let mut naive = vec![0.0; nf * oh * ow];
                conv2d_im2col(
                    &x, &filters, &bias, c, h, w, nf, kh, kw, &mut patches, &mut fast,
                );
                conv2d_naive(&x, &filters, &bias, c, h, w, nf, kh, kw, &mut naive);
                let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
                let naive_bits: Vec<u32> = naive.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(fast_bits, naive_bits);
            }
        }
    }

    #[test]
    fn im2col_conv_matches_naive_bitwise_on_random_shapes() {
        for seed in 0..50 {
            let (x, filters, bias, c, h, w, nf, kh, kw) = random_case(seed);
            let (oh, ow) = conv_out_dims(h, w, kh, kw);
            let mut patches = Vec::new();
            let mut fast = vec![0.0; nf * oh * ow];
            let mut naive = vec![0.0; nf * oh * ow];
            conv2d_im2col(
                &x,
                &filters,
                &bias,
                c,
                h,
                w,
                nf,
                kh,
                kw,
                &mut patches,
                &mut fast,
            );
            conv2d_naive(&x, &filters, &bias, c, h, w, nf, kh, kw, &mut naive);
            let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            let naive_bits: Vec<u32> = naive.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fast_bits, naive_bits, "seed {seed}");
        }
    }
}
