//! The three paper networks (Table 2): MNIST image classification, human
//! activity recognition (HAR), and Google keyword spotting (OkG).
//!
//! Each network is defined in its *uncompressed* form exactly as in
//! Table 2 — all three are infeasible on the device as-is, which is
//! GENESIS's motivation — together with the compression knobs that produce
//! a Table 2-like deployed configuration (separated convolutions, heavily
//! pruned fully-connected layers, untouched classifier).
//!
//! Training runs on the synthetic datasets of [`dnn::data`] (a data-gate
//! substitution; see DESIGN.md §1) and caches trained models on disk via
//! [`dnn::codec`], so experiment binaries re-run quickly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dnn::codec;
use dnn::data::Dataset;
use dnn::layers::Layer;
use dnn::model::Model;
use dnn::quant::{quantize, QModel};
use dnn::tensor::Tensor;
use dnn::train::{train, TrainConfig};
use genesis::search::{apply_knobs, PlanKnobs};
use std::path::PathBuf;

/// The three evaluation networks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Network {
    /// MNIST-style image classification (LeNet-like CNN).
    Mnist,
    /// Human activity recognition from 3-axis accelerometer windows.
    Har,
    /// Google keyword spotting over audio spectrograms.
    Okg,
}

impl Network {
    /// All three networks, in the paper's order.
    pub const ALL: [Network; 3] = [Network::Mnist, Network::Har, Network::Okg];

    /// Display name used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Network::Mnist => "MNIST",
            Network::Har => "HAR",
            Network::Okg => "OkG",
        }
    }

    /// Input tensor shape.
    pub fn input_shape(self) -> Vec<usize> {
        match self {
            Network::Mnist => vec![1, 28, 28],
            Network::Har => vec![3, 1, 61],
            Network::Okg => vec![1, 98, 34],
        }
    }

    /// The class treated as "interesting" for the IMpJ model's tp/tn.
    pub fn interesting_class(self) -> usize {
        0
    }

    /// The paper's accuracy for this network (Table 2), for reporting.
    pub fn paper_accuracy(self) -> f64 {
        match self {
            Network::Mnist => 0.99,
            Network::Har => 0.88,
            Network::Okg => 0.84,
        }
    }

    /// Deterministic synthetic train/test datasets with this network's
    /// shapes and class structure.
    pub fn datasets(self, n: usize, seed: u64) -> (Dataset, Dataset) {
        let all = match self {
            Network::Mnist => dnn::data::synth_mnist(n, seed),
            Network::Har => dnn::data::synth_har(n, seed),
            Network::Okg => dnn::data::synth_okg(n, seed),
        };
        all.split(0.8)
    }

    /// The uncompressed architecture, exactly as in Table 2.
    ///
    /// MNIST: conv 20×1×5×5, conv 100×20×5×5, fc 200×1600, fc 500×200,
    /// fc 10×500. HAR: conv 98×3×1×12, fc 192×2450, fc 256×192, fc 6×256.
    /// OkG: conv 186×1×98×8, fc 96×1674, fc 128×96, fc 128×128, fc 12×128.
    pub fn base_model(self, seed: u64) -> Model {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match self {
            Network::Mnist => Model::new(vec![
                Layer::conv2d(20, 1, 5, 5, &mut rng),
                Layer::relu(),
                Layer::maxpool(2),
                Layer::conv2d(100, 20, 5, 5, &mut rng),
                Layer::relu(),
                Layer::maxpool(2),
                Layer::flatten(),
                Layer::dense(1600, 200, &mut rng),
                Layer::relu(),
                Layer::dense(200, 500, &mut rng),
                Layer::relu(),
                Layer::dense(500, 10, &mut rng),
            ]),
            Network::Har => Model::new(vec![
                Layer::conv2d(98, 3, 1, 12, &mut rng),
                Layer::relu(),
                Layer::maxpool_rect(1, 2),
                Layer::flatten(),
                Layer::dense(98 * 25, 192, &mut rng),
                Layer::relu(),
                Layer::dense(192, 256, &mut rng),
                Layer::relu(),
                Layer::dense(256, 6, &mut rng),
            ]),
            Network::Okg => Model::new(vec![
                Layer::conv2d(186, 1, 98, 8, &mut rng),
                Layer::relu(),
                Layer::maxpool_rect(1, 3),
                Layer::flatten(),
                Layer::dense(186 * 9, 96, &mut rng),
                Layer::relu(),
                Layer::dense(96, 128, &mut rng),
                Layer::relu(),
                Layer::dense(128, 128, &mut rng),
                Layer::relu(),
                Layer::dense(128, 12, &mut rng),
            ]),
        }
    }

    /// Compression knobs yielding a Table 2-like deployed configuration.
    pub fn paper_knobs(self) -> PlanKnobs {
        match self {
            // Convolutions separated into 3×1D factors (kept dense — the
            // factors are already tiny); fully-connected layers heavily
            // pruned, classifier untouched: the Table 2 recipe.
            Network::Mnist => PlanKnobs {
                conv_sep: Some((3, 3)),
                conv_density: 1.0,
                fc_rank: None,
                fc_density: 0.05,
            },
            Network::Har => PlanKnobs {
                conv_sep: Some((4, 4)),
                conv_density: 0.5,
                fc_rank: None,
                fc_density: 0.04,
            },
            Network::Okg => PlanKnobs {
                conv_sep: Some((3, 3)),
                conv_density: 1.0,
                fc_rank: Some(32),
                fc_density: 0.15,
            },
        }
    }

    /// Training schedule used for the cached models.
    pub fn train_config(self) -> TrainConfig {
        TrainConfig {
            epochs: 10,
            batch: 16,
            lr: 0.015,
            momentum: 0.9,
            seed: 0xC0FFEE,
        }
    }

    /// Default dataset size for the cached models (split 80/20).
    pub fn dataset_size(self) -> usize {
        match self {
            Network::Mnist => 900,
            Network::Har => 1200,
            Network::Okg => 900,
        }
    }
}

/// A trained, compressed, quantized network ready for deployment, plus its
/// evaluation data.
#[derive(Debug)]
pub struct TrainedNetwork {
    /// Which network this is.
    pub network: Network,
    /// The trained float model (compressed form).
    pub model: Model,
    /// The quantized deployable model.
    pub qmodel: QModel,
    /// Train split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
    /// Quantized test accuracy.
    pub accuracy: f64,
}

fn cache_dir() -> PathBuf {
    // Keep artifacts next to the build so `cargo clean` clears them.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/model-cache")
}

/// Trains (or loads from cache) the compressed deployable network.
///
/// The first call per network trains for a few epochs (~seconds to a
/// couple of minutes); later calls load the cached weights.
pub fn trained(network: Network) -> TrainedNetwork {
    let (train_set, test_set) = network.datasets(network.dataset_size(), 42);
    let cache = cache_dir().join(format!("{}-compressed.sdnn", network.label()));
    let model = match codec::load_file(&cache) {
        Ok(m) => m,
        Err(_) => {
            // GENESIS's actual flow (§5.2): train the full network first,
            // THEN compress it, then re-train the compressed form. The
            // separation factors and pruning masks transfer structure
            // from the trained weights.
            let mut base = network.base_model(7);
            let warmup = TrainConfig {
                epochs: 3,
                lr: 0.01,
                ..network.train_config()
            };
            train(&mut base, &train_set, &warmup);
            let mut m = apply_knobs(&base, &network.paper_knobs());
            train(&mut m, &train_set, &network.train_config());
            let _ = codec::save_file(&m, &cache);
            m
        }
    };
    let mut model = model;
    let calib: Vec<Tensor> = (0..8).map(|i| train_set.input(i)).collect();
    let qmodel = quantize(&mut model, &network.input_shape(), &calib);
    let mut correct = 0usize;
    let mut scratch = dnn::quant::HostScratch::default();
    for i in 0..test_set.len() {
        if qmodel.predict_host_with(&test_set.input(i), &mut scratch) == test_set.label(i) {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / test_set.len() as f64;
    TrainedNetwork {
        network,
        model,
        qmodel,
        train: train_set,
        test: test_set,
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_architectures_match_table2() {
        let m = Network::Mnist.base_model(1);
        let d = m.describe();
        assert!(d.contains("conv 20x1x5x5"), "{d}");
        assert!(d.contains("conv 100x20x5x5"), "{d}");
        assert!(d.contains("fc 200x1600"), "{d}");
        assert!(d.contains("fc 500x200"), "{d}");
        assert!(d.contains("fc 10x500"), "{d}");

        let h = Network::Har.base_model(1);
        assert!(h.describe().contains("conv 98x3x1x12"));
        assert!(h.describe().contains("fc 192x2450"));
        assert!(h.describe().contains("fc 6x256"));

        let o = Network::Okg.base_model(1);
        assert!(o.describe().contains("conv 186x1x98x8"));
        assert!(o.describe().contains("fc 96x1674"));
        assert!(o.describe().contains("fc 12x128"));
    }

    #[test]
    fn base_shapes_chain_to_class_counts() {
        for n in Network::ALL {
            let m = n.base_model(2);
            let out = m.output_shape(&n.input_shape());
            let classes = match n {
                Network::Mnist => 10,
                Network::Har => 6,
                Network::Okg => 12,
            };
            assert_eq!(out, vec![classes], "{}", n.label());
        }
    }

    #[test]
    fn uncompressed_networks_do_not_fit_the_device() {
        // Table 2 / Fig. 4: the original configurations are infeasible.
        // 16-bit words: budget is 128 K words of FRAM.
        for n in [Network::Mnist, Network::Okg] {
            let m = n.base_model(3);
            assert!(
                m.dense_params() > 131_072 / 2,
                "{} should be infeasible uncompressed",
                n.label()
            );
        }
    }

    #[test]
    fn paper_knobs_compress_into_feasibility() {
        for n in Network::ALL {
            let base = n.base_model(4);
            let mut compressed = apply_knobs(&base, &n.paper_knobs());
            let calib: Vec<Tensor> = {
                let (tr, _) = n.datasets(40, 9);
                (0..4).map(|i| tr.input(i)).collect()
            };
            let qm = quantize(&mut compressed, &n.input_shape(), &calib);
            assert!(
                qm.fram_words() < 120_000,
                "{}: compressed model must fit ({} words)",
                n.label(),
                qm.fram_words()
            );
        }
    }

    #[test]
    fn datasets_have_paper_shapes() {
        let (tr, te) = Network::Har.datasets(60, 5);
        assert_eq!(tr.shape(), &[3, 1, 61]);
        assert_eq!(tr.num_classes(), 6);
        assert!(!te.is_empty());
    }
}
