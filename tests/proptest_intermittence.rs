//! Property test: for randomly generated networks and inputs, SONIC's
//! intermittent execution is bit-identical to its continuous execution —
//! the paper's core correctness guarantee.

use proptest::prelude::*;
use rand::SeedableRng;
use sonic_tails::dnn::layers::Layer;
use sonic_tails::dnn::model::Model;
use sonic_tails::dnn::quant::quantize;
use sonic_tails::dnn::tensor::Tensor;
use sonic_tails::mcu::{DeviceSpec, PowerSystem};
use sonic_tails::sonic::exec::{run_inference, Backend, TailsConfig};

fn random_qmodel(
    seed: u64,
    filters: usize,
    hidden: usize,
    prune: bool,
) -> (sonic_tails::dnn::quant::QModel, Vec<fxp::Q15>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut model = Model::new(vec![
        Layer::conv2d(filters, 1, 3, 3, &mut rng),
        Layer::relu(),
        Layer::maxpool(2),
        Layer::flatten(),
        Layer::dense(filters * 5 * 5, hidden, &mut rng),
        Layer::relu(),
        Layer::dense(hidden, 4, &mut rng),
    ]);
    if prune {
        let l = &mut model.layers_mut()[4];
        if let Layer::Dense(d) = l {
            let mut mask = Tensor::zeros(d.w.shape().to_vec());
            for (i, m) in mask.data_mut().iter_mut().enumerate() {
                if i % 5 == 0 {
                    *m = 1.0;
                }
            }
            l.set_mask(mask);
        }
    }
    let shape = [1usize, 12, 12];
    let calib: Vec<Tensor> = (0..2)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let x = Tensor::uniform(shape.to_vec(), 0.9, &mut rng);
    let input = qm.quantize_input(&x);
    (qm, input)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sonic_intermittent_matches_continuous(
        seed in 0u64..1000,
        filters in 2usize..5,
        hidden in 4usize..12,
        prune in any::<bool>(),
        cap_uf in 3.0f64..40.0,
    ) {
        let (qm, input) = random_qmodel(seed, filters, hidden, prune);
        let spec = DeviceSpec::msp430fr5994();
        let cont = run_inference(&qm, &input, &spec, PowerSystem::continuous(), &Backend::Sonic);
        let inter = run_inference(
            &qm, &input, &spec,
            PowerSystem::harvested(cap_uf * 1e-6),
            &Backend::Sonic,
        );
        prop_assert!(inter.completed);
        prop_assert_eq!(inter.output, cont.output);
    }

    #[test]
    fn tails_intermittent_matches_continuous(
        seed in 0u64..1000,
        cap_uf in 3.0f64..30.0,
    ) {
        let (qm, input) = random_qmodel(seed, 3, 8, true);
        let spec = DeviceSpec::msp430fr5994();
        let b = Backend::Tails(TailsConfig::default());
        let cont = run_inference(&qm, &input, &spec, PowerSystem::continuous(), &b);
        let inter = run_inference(&qm, &input, &spec, PowerSystem::harvested(cap_uf * 1e-6), &b);
        prop_assert!(inter.completed);
        prop_assert_eq!(inter.output, cont.output);
    }

    #[test]
    fn tiled_intermittent_matches_continuous(
        seed in 0u64..1000,
        tile in prop::sample::select(vec![8u32, 32]),
        cap_uf in 8.0f64..40.0,
    ) {
        let (qm, input) = random_qmodel(seed, 3, 8, false);
        let spec = DeviceSpec::msp430fr5994();
        let b = Backend::Tiled(tile);
        let cont = run_inference(&qm, &input, &spec, PowerSystem::continuous(), &b);
        let inter = run_inference(&qm, &input, &spec, PowerSystem::harvested(cap_uf * 1e-6), &b);
        prop_assert!(inter.completed);
        prop_assert_eq!(inter.output, cont.output);
    }
}
