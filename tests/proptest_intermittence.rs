//! Property tests: for randomly generated networks and inputs, each
//! runtime's intermittent execution is bit-identical to its continuous
//! execution — the paper's core correctness guarantee.
//!
//! Brown-outs are sampled two ways. The deterministic properties drive
//! [`FaultPlan`] through [`run_inference_faulted`]: the sampled fault
//! schedule pins a brown-out to an exact charged-op boundary, so a
//! failure shrinks to a reproducible (seed, boundary) pair instead of a
//! capacitor size whose natural failure points drift with any accounting
//! change. One property keeps the organic path — a harvested capacitor
//! whose buffer genuinely runs dry mid-inference — so the natural
//! brown-out machinery stays covered end to end.

use proptest::prelude::*;
use rand::SeedableRng;
use sonic_tails::dnn::layers::Layer;
use sonic_tails::dnn::model::Model;
use sonic_tails::dnn::quant::quantize;
use sonic_tails::dnn::tensor::Tensor;
use sonic_tails::mcu::{Device, DeviceSpec, FaultKind, FaultPlan, PowerSystem};
use sonic_tails::sonic::exec::{run_inference, run_inference_faulted, Backend, TailsConfig};
use sonic_tails::sonic::spec::{
    classify_faults, fault_free_reference, stateful_tag_words, CorruptionOutcome,
};

/// Case count: 12 in the tier-1 run, raised via `PROPTEST_CASES` in the
/// non-gating CI smoke job.
fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

fn random_qmodel(
    seed: u64,
    filters: usize,
    hidden: usize,
    prune: bool,
) -> (sonic_tails::dnn::quant::QModel, Vec<fxp::Q15>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut model = Model::new(vec![
        Layer::conv2d(filters, 1, 3, 3, &mut rng),
        Layer::relu(),
        Layer::maxpool(2),
        Layer::flatten(),
        Layer::dense(filters * 5 * 5, hidden, &mut rng),
        Layer::relu(),
        Layer::dense(hidden, 4, &mut rng),
    ]);
    if prune {
        let l = &mut model.layers_mut()[4];
        if let Layer::Dense(d) = l {
            let mut mask = Tensor::zeros(d.w.shape().to_vec());
            for (i, m) in mask.data_mut().iter_mut().enumerate() {
                if i % 5 == 0 {
                    *m = 1.0;
                }
            }
            l.set_mask(mask);
        }
    }
    let shape = [1usize, 12, 12];
    let calib: Vec<Tensor> = (0..2)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let x = Tensor::uniform(shape.to_vec(), 0.9, &mut rng);
    let input = qm.quantize_input(&x);
    (qm, input)
}

/// Maps sampled unit-interval fractions onto concrete charged-op
/// boundaries of the fault-free run.
fn boundaries(fracs: &[f64], ops: u64) -> Vec<u64> {
    let mut t: Vec<u64> = fracs
        .iter()
        .map(|f| ((f * ops as f64) as u64).min(ops - 1))
        .collect();
    t.sort_unstable();
    t.dedup();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]

    #[test]
    fn sonic_faulted_matches_continuous(
        seed in 0u64..1000,
        filters in 2usize..5,
        hidden in 4usize..12,
        prune in any::<bool>(),
        fracs in prop::collection::vec(0.0f64..1.0, 1..5),
    ) {
        let (qm, input) = random_qmodel(seed, filters, hidden, prune);
        let spec = DeviceSpec::msp430fr5994();
        let b = Backend::Sonic;
        let (expected, ops) = fault_free_reference(&qm, &input, &spec, &b);
        let plan = FaultPlan::at_each(boundaries(&fracs, ops));
        let out = run_inference_faulted(
            &qm, &input, &spec, PowerSystem::continuous(), &b, &plan,
        );
        prop_assert!(out.completed, "{:?} {:?}", out.error, out.brownout);
        prop_assert_eq!(out.output, expected);
    }

    #[test]
    fn tails_faulted_matches_continuous(
        seed in 0u64..1000,
        fracs in prop::collection::vec(0.0f64..1.0, 1..5),
    ) {
        let (qm, input) = random_qmodel(seed, 3, 8, true);
        let spec = DeviceSpec::msp430fr5994();
        let b = Backend::Tails(TailsConfig::default());
        let (expected, ops) = fault_free_reference(&qm, &input, &spec, &b);
        let plan = FaultPlan::at_each(boundaries(&fracs, ops));
        let out = run_inference_faulted(
            &qm, &input, &spec, PowerSystem::continuous(), &b, &plan,
        );
        prop_assert!(out.completed, "{:?} {:?}", out.error, out.brownout);
        prop_assert_eq!(out.output, expected);
    }

    #[test]
    fn tiled_faulted_matches_continuous(
        seed in 0u64..1000,
        tile in prop::sample::select(vec![8u32, 32]),
        fracs in prop::collection::vec(0.0f64..1.0, 1..5),
    ) {
        let (qm, input) = random_qmodel(seed, 3, 8, false);
        let spec = DeviceSpec::msp430fr5994();
        let b = Backend::Tiled(tile);
        let (expected, ops) = fault_free_reference(&qm, &input, &spec, &b);
        let plan = FaultPlan::at_each(boundaries(&fracs, ops));
        let out = run_inference_faulted(
            &qm, &input, &spec, PowerSystem::continuous(), &b, &plan,
        );
        prop_assert!(out.completed, "{:?} {:?}", out.error, out.brownout);
        prop_assert_eq!(out.output, expected);
    }

    /// The stateful progress-embedding backend on random networks: with
    /// no loop words and no redo log, arbitrary multi-fault brown-out
    /// schedules must still recover bit-exactly through the reboot-time
    /// binary search over the embedded tags.
    #[test]
    fn stateful_faulted_matches_continuous(
        seed in 0u64..1000,
        filters in 2usize..5,
        hidden in 4usize..12,
        prune in any::<bool>(),
        fracs in prop::collection::vec(0.0f64..1.0, 1..5),
    ) {
        let (qm, input) = random_qmodel(seed, filters, hidden, prune);
        let spec = DeviceSpec::msp430fr5994();
        let b = Backend::Stateful;
        let (expected, ops) = fault_free_reference(&qm, &input, &spec, &b);
        let plan = FaultPlan::at_each(boundaries(&fracs, ops));
        let out = run_inference_faulted(
            &qm, &input, &spec, PowerSystem::continuous(), &b, &plan,
        );
        prop_assert!(out.completed, "{:?} {:?}", out.error, out.brownout);
        prop_assert_eq!(out.output, expected);
    }

    /// Compound faults against the stateful backend: a brown-out, a
    /// second brown-out a few ops later (often landing inside the
    /// reboot-time seek itself), and a bit flip in an embedded tag word.
    /// Whatever the interleaving, the run must end masked, recovered,
    /// aborted, or with faults left unfired after a detected abort —
    /// never a silent wrong answer and never an undetected wedge.
    #[test]
    fn stateful_brownout_mid_seek_plus_tag_flip_never_silently_corrupts(
        seed in 0u64..1000,
        bo_frac in 0.0f64..1.0,
        seek_delta in 1u64..40,
        flip_frac in 0.0f64..1.0,
        word_frac in 0.0f64..1.0,
        bit in 0u8..16,
    ) {
        let (qm, input) = random_qmodel(seed, 2, 6, false);
        let spec = DeviceSpec::msp430fr5994();
        let b = Backend::Stateful;
        let (expected, ops) = fault_free_reference(&qm, &input, &spec, &b);
        let mut probe = Device::new(spec.clone(), PowerSystem::continuous());
        let pm = sonic_tails::sonic::deploy(&mut probe, &qm).unwrap();
        let words = stateful_tag_words(&pm);
        let wi = ((word_frac * words.len() as f64) as usize).min(words.len() - 1);
        let (name, addr) = &words[wi];
        let t_bo = ((bo_frac * ops as f64) as u64).min(ops - 1);
        let t_flip = ((flip_frac * ops as f64) as u64).min(ops - 1);
        let plan = [
            (t_bo, FaultKind::Brownout),
            // The recovery seek starts right after the reboot; a second
            // brown-out a handful of charged ops later interrupts it.
            (t_bo + seek_delta, FaultKind::Brownout),
            (t_flip, FaultKind::BitFlip { addr: *addr, bit }),
        ];
        let out = classify_faults(&qm, &input, &spec, &b, &plan, &expected);
        prop_assert!(
            !matches!(out, CorruptionOutcome::SilentWrong | CorruptionOutcome::Wedged),
            "{}.bit{} flip @#{} with brown-outs @#{}/#{}: {:?}",
            name, bit, t_flip, t_bo, t_bo + seek_delta, out
        );
    }

    /// The organic path: a harvested capacitor small enough that the
    /// buffer runs dry mid-inference, exercising natural brown-out
    /// detection (no injection) across all the moving parts at once.
    #[test]
    fn sonic_natural_harvest_matches_continuous(
        seed in 0u64..1000,
        filters in 2usize..5,
        hidden in 4usize..12,
        prune in any::<bool>(),
        cap_uf in 3.0f64..40.0,
    ) {
        let (qm, input) = random_qmodel(seed, filters, hidden, prune);
        let spec = DeviceSpec::msp430fr5994();
        let cont = run_inference(&qm, &input, &spec, PowerSystem::continuous(), &Backend::Sonic);
        let inter = run_inference(
            &qm, &input, &spec,
            PowerSystem::harvested(cap_uf * 1e-6),
            &Backend::Sonic,
        );
        prop_assert!(inter.completed);
        prop_assert_eq!(inter.output, cont.output);
    }
}
