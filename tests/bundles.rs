//! Bundle/scalar equivalence: golden digests recorded from the original
//! scalar (one-`consume`-per-op) accounting path, pinned against the
//! bundled fast path.
//!
//! Every scenario digest covers the complete observable result of a run:
//! the output logits, completion/error state, reboot count, live cycles,
//! dead seconds (bit pattern), total energy, and the full per-region
//! trace breakdown (kernel/control cycles and energy, index-write energy,
//! and the per-op energy table). If bundled accounting ever charges a
//! different op count, lands a brown-out on a different op, or perturbs a
//! single Q15 output anywhere, the digest moves.
//!
//! Regenerate (after an *intentional* accounting change) with:
//! `GOLDEN_PRINT=1 cargo test --test bundles -- --nocapture`

use rand::SeedableRng;
use sonic_tails::dnn::layers::Layer;
use sonic_tails::dnn::model::Model;
use sonic_tails::dnn::quant::{quantize, QModel};
use sonic_tails::dnn::tensor::Tensor;
use sonic_tails::fxp::Q15;
use sonic_tails::mcu::{DeviceSpec, HarvestProfile, PowerSystem};
use sonic_tails::sonic::exec::{run_inference, Backend, InferenceOutcome, TailsConfig};

fn fnv(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x1000_0000_01b3);
    }
}

/// FNV-1a over every bit-relevant field of an inference outcome,
/// including the full per-region trace attribution.
fn outcome_digest(o: &InferenceOutcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut h, o.completed as u64);
    fnv(&mut h, o.output.len() as u64);
    for q in &o.output {
        fnv(&mut h, q.raw() as u16 as u64);
    }
    fnv(&mut h, o.class.map(|c| c as u64 + 1).unwrap_or(0));
    fnv(&mut h, o.trace.live_cycles);
    fnv(&mut h, o.trace.dead_secs.to_bits());
    fnv(&mut h, o.trace.reboots);
    fnv(&mut h, o.trace.total_energy_pj);
    for r in &o.trace.regions {
        for b in r.name.as_bytes() {
            fnv(&mut h, *b as u64);
        }
        fnv(&mut h, r.kernel_cycles);
        fnv(&mut h, r.control_cycles);
        fnv(&mut h, r.kernel_energy_pj);
        fnv(&mut h, r.control_energy_pj);
        fnv(&mut h, r.index_write_energy_pj);
        for (op, e) in &r.energy_by_op {
            fnv(&mut h, op.index() as u64);
            fnv(&mut h, *e);
        }
    }
    if let Some(s) = &o.stats {
        fnv(&mut h, s.transitions);
        fnv(&mut h, s.body_attempts);
        fnv(&mut h, s.reboots);
    }
    if let Some(e) = &o.error {
        for b in e.as_bytes() {
            fnv(&mut h, *b as u64);
        }
    }
    h
}

/// CNN with dense conv, relu, pool, a pruned (sparse) FC, and a dense FC:
/// every SONIC/TAILS kernel kind in one network.
fn model_cnn() -> (QModel, Vec<Q15>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    let mut model = Model::new(vec![
        Layer::conv2d(4, 1, 3, 3, &mut rng),
        Layer::relu(),
        Layer::maxpool(2),
        Layer::flatten(),
        Layer::dense(4 * 7 * 7, 12, &mut rng),
        Layer::relu(),
        Layer::dense(12, 4, &mut rng),
    ]);
    if let Layer::Dense(d) = &mut model.layers_mut()[4] {
        let mut mask = Tensor::zeros(d.w.shape().to_vec());
        for (i, m) in mask.data_mut().iter_mut().enumerate() {
            if i % 7 == 0 {
                *m = 1.0;
            }
        }
        model.layers_mut()[4].set_mask(mask);
    }
    let shape = [1usize, 16, 16];
    let calib: Vec<Tensor> = (0..3)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let x = Tensor::uniform(shape.to_vec(), 0.9, &mut rng);
    let input = qm.quantize_input(&x);
    (qm, input)
}

/// Sparse conv (one filter pruned to zero taps) + dense FC.
fn model_sparse_conv() -> (QModel, Vec<Q15>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let mut model = Model::new(vec![
        Layer::conv2d(3, 1, 3, 3, &mut rng),
        Layer::flatten(),
        Layer::dense(3 * 6 * 6, 4, &mut rng),
    ]);
    if let Layer::Conv2d(c) = &mut model.layers_mut()[0] {
        let mut mask = Tensor::zeros(c.filters.shape().to_vec());
        for (i, m) in mask.data_mut().iter_mut().enumerate() {
            let f = i / 9;
            if f != 1 && i % 3 == 0 {
                *m = 1.0;
            }
        }
        model.layers_mut()[0].set_mask(mask);
    }
    let shape = [1usize, 8, 8];
    let calib: Vec<Tensor> = (0..2)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let x = Tensor::uniform(shape.to_vec(), 0.9, &mut rng);
    let input = qm.quantize_input(&x);
    (qm, input)
}

/// Heavily pruned FC-only model (the sparse undo-logging hot case).
fn model_sparse_fc() -> (QModel, Vec<Q15>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let mut model = Model::new(vec![
        Layer::dense(40, 64, &mut rng),
        Layer::relu(),
        Layer::dense(64, 5, &mut rng),
    ]);
    if let Layer::Dense(d) = &mut model.layers_mut()[0] {
        let mut mask = Tensor::zeros(d.w.shape().to_vec());
        for (i, m) in mask.data_mut().iter_mut().enumerate() {
            if i % 9 == 0 {
                *m = 1.0;
            }
        }
        model.layers_mut()[0].set_mask(mask);
    }
    let shape = [40usize];
    let calib: Vec<Tensor> = (0..3)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let x = Tensor::uniform(shape.to_vec(), 0.9, &mut rng);
    let input = qm.quantize_input(&x);
    (qm, input)
}

fn backends() -> Vec<Backend> {
    vec![
        Backend::Baseline,
        Backend::Tiled(8),
        Backend::Tiled(32),
        Backend::Sonic,
        Backend::SonicNoUndo,
        Backend::Tails(TailsConfig::default()),
        Backend::Tails(TailsConfig {
            use_lea: false,
            use_dma: true,
        }),
        Backend::Tails(TailsConfig {
            use_lea: true,
            use_dma: false,
        }),
        // All-software TAILS: the only configuration where every
        // software staging/FIR/add sequence in the row bundles is active
        // at once (the paper's LEA/DMA ablation baseline). Pinned after
        // the refactor — each flag's software path is covered
        // scalar-vs-bundled by the two configs above; this guards the
        // combination against future drift.
        Backend::Tails(TailsConfig {
            use_lea: false,
            use_dma: false,
        }),
    ]
}

fn powers() -> Vec<PowerSystem> {
    vec![
        // Continuous: the pure-throughput path, no brown-outs.
        PowerSystem::continuous(),
        // Small buffer: thousands of brown-outs, most landing mid-loop
        // (mid-bundle in the bundled implementation).
        PowerSystem::harvested(8e-6),
        // Time-varying occlusion: recharge times depend on the absolute
        // failure time, so op-exact execution is required for dead_secs
        // to reproduce bit-for-bit.
        PowerSystem::harvested_with(
            6e-6,
            HarvestProfile::Square {
                high_w: 150e-6,
                low_w: 0.0,
                period_s: 0.02,
                duty: 0.5,
            },
        ),
    ]
}

/// Golden digests recorded from the scalar accounting path (one
/// `Device::consume` per op), scenario order: model-major, then power,
/// then backend (see `scenarios`).
const GOLDEN: &[u64] = &[
    0x49201878fa46a2a1, // cnn/Cont/Base
    0xc1d5dad1a65b14e1, // cnn/Cont/Tile-8
    0x0e9d260ffd271ff9, // cnn/Cont/Tile-32
    0x38ab1e21b0ee93af, // cnn/Cont/SONIC
    0xc36584804f3ec3d2, // cnn/Cont/SONIC-no-undo
    0x721b0379e77227a8, // cnn/Cont/TAILS
    0x9e0e8531c155dff7, // cnn/Cont/TAILS(lea=0,dma=1)
    0x9f2c5b4dd5e10f16, // cnn/Cont/TAILS(lea=1,dma=0)
    0x6afdb38e0bba16ed, // cnn/Cont/TAILS(lea=0,dma=0)
    0x2f6e77961bccc126, // cnn/8uF/Base
    0xd19818b81c285c23, // cnn/8uF/Tile-8
    0x3f3eb375986af337, // cnn/8uF/Tile-32
    0x7638934f4cfd8bc4, // cnn/8uF/SONIC
    0x60822d02514112a0, // cnn/8uF/SONIC-no-undo
    0x194c9e6a4d6d0c45, // cnn/8uF/TAILS
    0xfa44dd6f8bb172c9, // cnn/8uF/TAILS(lea=0,dma=1)
    0x99d70168ef2c919b, // cnn/8uF/TAILS(lea=1,dma=0)
    0x7bcdec82ea84bea6, // cnn/8uF/TAILS(lea=0,dma=0)
    0x31452d84cbf48b40, // cnn/6uF~sq/Base
    0x50d2dcd241abe5b0, // cnn/6uF~sq/Tile-8
    0x276725121a1f978c, // cnn/6uF~sq/Tile-32
    0x8427fba274570817, // cnn/6uF~sq/SONIC
    0xfa4872390aa0177a, // cnn/6uF~sq/SONIC-no-undo
    0x5771a4147621fe62, // cnn/6uF~sq/TAILS
    0x8a384b845ec1c682, // cnn/6uF~sq/TAILS(lea=0,dma=1)
    0x10377013c35490ab, // cnn/6uF~sq/TAILS(lea=1,dma=0)
    0x56cc7664af43b51f, // cnn/6uF~sq/TAILS(lea=0,dma=0)
    0x03cb865eb89d782e, // sparse-conv/Cont/Base
    0x649cbf1464e52879, // sparse-conv/Cont/Tile-8
    0x563cf1ff6eb2914e, // sparse-conv/Cont/Tile-32
    0xe530aab1ec1b5b0e, // sparse-conv/Cont/SONIC
    0xe530aab1ec1b5b0e, // sparse-conv/Cont/SONIC-no-undo
    0xad601305ed1bd9dd, // sparse-conv/Cont/TAILS
    0x409265ff3a07d21e, // sparse-conv/Cont/TAILS(lea=0,dma=1)
    0xc5703ad2d34ba356, // sparse-conv/Cont/TAILS(lea=1,dma=0)
    0x72cf6f92b4124b78, // sparse-conv/Cont/TAILS(lea=0,dma=0)
    0x545f0bbb0a57c686, // sparse-conv/8uF/Base
    0x0dab50afbe6f9c1b, // sparse-conv/8uF/Tile-8
    0x73459be8bfffbde4, // sparse-conv/8uF/Tile-32
    0x6835043151073419, // sparse-conv/8uF/SONIC
    0x6835043151073419, // sparse-conv/8uF/SONIC-no-undo
    0xc66059e833db89ff, // sparse-conv/8uF/TAILS
    0x22b500601504b903, // sparse-conv/8uF/TAILS(lea=0,dma=1)
    0x1ea0c2e68370084c, // sparse-conv/8uF/TAILS(lea=1,dma=0)
    0x100aa3a57141bd4c, // sparse-conv/8uF/TAILS(lea=0,dma=0)
    0x3eae309f6c603f77, // sparse-conv/6uF~sq/Base
    0xbffd56153f94467b, // sparse-conv/6uF~sq/Tile-8
    0xbd6eafda31f336e5, // sparse-conv/6uF~sq/Tile-32
    0x336deccb88763980, // sparse-conv/6uF~sq/SONIC
    0x336deccb88763980, // sparse-conv/6uF~sq/SONIC-no-undo
    0xa93137c9bf764275, // sparse-conv/6uF~sq/TAILS
    0xba67db7096195c59, // sparse-conv/6uF~sq/TAILS(lea=0,dma=1)
    0x249e18df977dfbde, // sparse-conv/6uF~sq/TAILS(lea=1,dma=0)
    0x07996ba165839999, // sparse-conv/6uF~sq/TAILS(lea=0,dma=0)
    0xf3be95f59c376a1b, // sparse-fc/Cont/Base
    0xe1e274eeb94e38ec, // sparse-fc/Cont/Tile-8
    0x7bdc1d0fe92587f2, // sparse-fc/Cont/Tile-32
    0x40ca77be1c8cb940, // sparse-fc/Cont/SONIC
    0xea88cede8e39a1e3, // sparse-fc/Cont/SONIC-no-undo
    0x2a54694d58861c08, // sparse-fc/Cont/TAILS
    0xe7a99b697fa90127, // sparse-fc/Cont/TAILS(lea=0,dma=1)
    0x7003f81db71b624d, // sparse-fc/Cont/TAILS(lea=1,dma=0)
    0xafced23a8247676f, // sparse-fc/Cont/TAILS(lea=0,dma=0)
    0x8247a89b9794f36f, // sparse-fc/8uF/Base
    0xf21e33586b7973cf, // sparse-fc/8uF/Tile-8
    0x900f8b3ce4a750f9, // sparse-fc/8uF/Tile-32
    0x2b8c4762b8a5abe4, // sparse-fc/8uF/SONIC
    0xf83bc5e88cb6b110, // sparse-fc/8uF/SONIC-no-undo
    0xc3169210a81ae4d5, // sparse-fc/8uF/TAILS
    0xe6779d201c54144e, // sparse-fc/8uF/TAILS(lea=0,dma=1)
    0x60744a3af301ece7, // sparse-fc/8uF/TAILS(lea=1,dma=0)
    0xb3a64999039f7827, // sparse-fc/8uF/TAILS(lea=0,dma=0)
    0xa154b16617118e1e, // sparse-fc/6uF~sq/Base
    0xbe3a63e5e75f6437, // sparse-fc/6uF~sq/Tile-8
    0x2cd34f1bc4d5c2fb, // sparse-fc/6uF~sq/Tile-32
    0x71fafbbf7b97cd23, // sparse-fc/6uF~sq/SONIC
    0x278a58d81697b773, // sparse-fc/6uF~sq/SONIC-no-undo
    0x17cd80dea55e21f5, // sparse-fc/6uF~sq/TAILS
    0xd16b29079c533be7, // sparse-fc/6uF~sq/TAILS(lea=0,dma=1)
    0xc28bbb3ed519e631, // sparse-fc/6uF~sq/TAILS(lea=1,dma=0)
    0x099d899b14b1b04b, // sparse-fc/6uF~sq/TAILS(lea=0,dma=0)
];

/// Golden digests for the stateful progress-embedding backend, recorded
/// from its scalar accounting path the same way (kept out of [`GOLDEN`]
/// so the historical 81-scenario table stays byte-identical). Scenario
/// order: model-major, then power.
const GOLDEN_STATEFUL: &[u64] = &[
    0xd82b5456914b5bc3, // cnn/Cont/Stateful
    0xbfc78c6343e1d092, // cnn/8uF/Stateful
    0xfec453cc0240a9f1, // cnn/6uF~sq/Stateful
    0xa1f0332a8dfd638e, // sparse-conv/Cont/Stateful
    0xa6331233dfbf68b2, // sparse-conv/8uF/Stateful
    0x58a193445644f13c, // sparse-conv/6uF~sq/Stateful
    0x9134aa103c529c28, // sparse-fc/Cont/Stateful
    0x6ef181710f6ce8df, // sparse-fc/8uF/Stateful
    0x59fd8f2bf1146609, // sparse-fc/6uF~sq/Stateful
];

fn scenario_digests(backends: &[Backend]) -> Vec<(String, u64)> {
    let spec = DeviceSpec::msp430fr5994();
    let mut out = Vec::new();
    for (mname, (qm, input)) in [
        ("cnn", model_cnn()),
        ("sparse-conv", model_sparse_conv()),
        ("sparse-fc", model_sparse_fc()),
    ] {
        for power in powers() {
            for b in backends {
                let o = run_inference(&qm, &input, &spec, power.clone(), b);
                out.push((
                    format!("{mname}/{}/{}", power.label(), b.label()),
                    outcome_digest(&o),
                ));
            }
        }
    }
    out
}

fn scenarios() -> Vec<(String, u64)> {
    scenario_digests(&backends())
}

fn check_golden(got: &[(String, u64)], golden: &[u64]) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for (name, d) in got {
            println!("    {d:#018x}, // {name}");
        }
        return;
    }
    assert_eq!(got.len(), golden.len(), "scenario list changed");
    for ((name, d), g) in got.iter().zip(golden) {
        assert_eq!(
            d, g,
            "{name}: trace/output digest diverged from the scalar path"
        );
    }
}

#[test]
fn backend_traces_match_scalar_golden_digests() {
    check_golden(&scenarios(), GOLDEN);
}

#[test]
fn stateful_traces_match_scalar_golden_digests() {
    check_golden(&scenario_digests(&[Backend::Stateful]), GOLDEN_STATEFUL);
}
