//! Tier-1 crash-consistency suite: differential brown-out injection
//! against the executable spec in `sonic::spec`.
//!
//! The `exhaustive_*` tests force a brown-out at **every** charged op
//! boundary of a small network — including mid-commit-walk and mid-DMA
//! boundaries — for each backend, and require (a) the post-reboot
//! concrete state to refine the abstract machine at every crash and
//! (b) the recovered output to be bit-equal to the fault-free run. The
//! strided tests run the same check over a deeper conv/pool/sparse-FC
//! network at sampled boundaries, and the proptest samples multi-fault
//! schedules.

use proptest::prelude::*;
use rand::SeedableRng;
use sonic_tails::dnn::layers::Layer;
use sonic_tails::dnn::model::Model;
use sonic_tails::dnn::quant::{quantize, QModel};
use sonic_tails::dnn::tensor::Tensor;
use sonic_tails::mcu::{Device, DeviceSpec, FaultKind, PowerSystem};
use sonic_tails::sonic::exec::{Backend, TailsConfig};
use sonic_tails::sonic::spec::{
    check_exhaustive, check_model_state, check_schedule, check_strided, classify_faults,
    control_words, fault_free_reference, CorruptionOutcome,
};

fn msp() -> DeviceSpec {
    DeviceSpec::msp430fr5994()
}

/// The smallest network every backend — including the restart-from-
/// scratch baseline — can run through arbitrary reboots: one dense
/// layer and a ReLU, so the input buffer is never overwritten by the
/// activation ping-pong.
fn small_qmodel() -> (QModel, Vec<fxp::Q15>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut model = Model::new(vec![Layer::dense(10, 8, &mut rng), Layer::relu()]);
    let shape = [10usize];
    let calib: Vec<Tensor> = (0..3)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let x = Tensor::uniform(shape.to_vec(), 0.9, &mut rng);
    let input = qm.quantize_input(&x);
    (qm, input)
}

/// A deeper network exercising every mechanism the spec models: a DMA-
/// staged convolution (under TAILS), pooling, a pruned sparse FC layer
/// (undo-logged under SONIC, redo-logged under Tile-N), and a plain FC.
fn deep_qmodel() -> (QModel, Vec<fxp::Q15>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let mut model = Model::new(vec![
        Layer::conv2d(2, 1, 3, 3, &mut rng),
        Layer::relu(),
        Layer::maxpool(2),
        Layer::flatten(),
        Layer::dense(8, 6, &mut rng),
        Layer::relu(),
        Layer::dense(6, 3, &mut rng),
    ]);
    let l = &mut model.layers_mut()[4];
    if let Layer::Dense(d) = l {
        let mut mask = Tensor::zeros(d.w.shape().to_vec());
        for (i, m) in mask.data_mut().iter_mut().enumerate() {
            if i % 2 == 0 {
                *m = 1.0;
            }
        }
        l.set_mask(mask);
    }
    let shape = [1usize, 6, 6];
    let calib: Vec<Tensor> = (0..2)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let x = Tensor::uniform(shape.to_vec(), 0.9, &mut rng);
    let input = qm.quantize_input(&x);
    (qm, input)
}

fn exhaustive(backend: Backend) {
    let (qm, input) = small_qmodel();
    let report = check_exhaustive(&qm, &input, &msp(), &backend);
    assert!(report.boundaries > 100, "sweep too small to mean anything");
    assert!(report.crashes >= report.boundaries);
    report.assert_clean();
}

#[test]
fn exhaustive_single_fault_baseline() {
    exhaustive(Backend::Baseline);
}

#[test]
fn exhaustive_single_fault_sonic() {
    exhaustive(Backend::Sonic);
}

#[test]
fn exhaustive_single_fault_tails() {
    exhaustive(Backend::Tails(TailsConfig::default()));
}

#[test]
fn exhaustive_single_fault_tiled() {
    exhaustive(Backend::Tiled(4));
}

#[test]
fn exhaustive_single_fault_stateful() {
    exhaustive(Backend::Stateful);
}

/// Strided sweep over the deep model: a few hundred boundaries per
/// backend, with backend-specific offsets so repeated suite runs cover
/// different residues of the boundary space. Exhaustive coverage of
/// this model is the `crash_spec` bench target.
fn strided(backend: Backend, offset: u64) {
    let (qm, input) = deep_qmodel();
    let (_, ops) = fault_free_reference(&qm, &input, &msp(), &backend);
    let stride = (ops / 199).max(1);
    let report = check_strided(&qm, &input, &msp(), &backend, stride, offset);
    assert!(
        report.boundaries > 50,
        "sweep too small: {}",
        report.boundaries
    );
    report.assert_clean();
}

#[test]
fn strided_deep_sonic() {
    strided(Backend::Sonic, 0);
}

#[test]
fn strided_deep_sonic_no_undo() {
    strided(Backend::SonicNoUndo, 1);
}

#[test]
fn strided_deep_tails() {
    strided(Backend::Tails(TailsConfig::default()), 2);
}

#[test]
fn strided_deep_tiled() {
    strided(Backend::Tiled(8), 3);
}

#[test]
fn strided_deep_stateful() {
    strided(Backend::Stateful, 4);
}

/// A concrete state the runtimes can never produce must be *detected* —
/// the deliberately-broken-invariant check proving the spec has teeth
/// end to end (the in-crate unit tests cover each machine's decode
/// paths individually).
#[test]
fn corrupted_control_words_fail_refinement() {
    let (qm, input) = deep_qmodel();
    let mut dev = Device::new(msp(), PowerSystem::continuous());
    let dm = sonic_tails::sonic::deploy(&mut dev, &qm).unwrap();
    dm.load_input(&mut dev, &input);
    // A conv filter counter past the filter count is unreachable under
    // every discipline.
    let conv = &dm.layers[0];
    dev.store_word(conv.filt, 7).unwrap();
    for backend in [
        Backend::Baseline,
        Backend::Sonic,
        Backend::Tails(TailsConfig::default()),
        Backend::Tiled(8),
        // Stateful never writes loop words, so any non-reset control
        // word is unreachable for it too.
        Backend::Stateful,
    ] {
        let v = check_model_state(&dev, &dm, &backend)
            .expect_err("filt=7 on a 2-filter conv must violate");
        assert!(
            v.divergence.contains("filt") || v.divergence.contains("reset value"),
            "[{}] {v}",
            backend.label()
        );
    }
}

/// Case count for the multi-fault property: 6 in the tier-1 run, raised
/// via `PROPTEST_CASES` in the non-gating CI smoke job.
fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]

    /// Sampled multi-fault schedules: up to five brown-outs per run at
    /// arbitrary boundaries (duplicates collapse via the fault queue),
    /// across the two state disciplines with non-trivial recovery.
    #[test]
    fn multi_fault_schedules_recover_bit_equal(
        raw in prop::collection::vec(0.0f64..1.0, 1..6),
        tiled in any::<bool>(),
    ) {
        let (qm, input) = small_qmodel();
        let backend = if tiled { Backend::Tiled(4) } else { Backend::Sonic };
        let (expected, ops) = fault_free_reference(&qm, &input, &msp(), &backend);
        let mut targets: Vec<u64> = raw
            .iter()
            .map(|f| ((f * ops as f64) as u64).min(ops - 1))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let out = check_schedule(&qm, &input, &msp(), &backend, &targets, &expected);
        prop_assert_eq!(out.crashes, targets.len() as u64);
        prop_assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    /// A brown-out and a control-word bit flip in one schedule, in
    /// either order (or coincident): whatever the interleaving, the run
    /// must end masked, recovered, aborted, or unfired — never a silent
    /// wrong answer and never an undetected wedge. On failure proptest
    /// prints the minimized counterexample and its reproduction seed.
    #[test]
    fn brownout_plus_bit_flip_never_silently_corrupts(
        flip_frac in 0.0f64..1.0,
        bo_frac in 0.0f64..1.0,
        word_frac in 0.0f64..1.0,
        bit in 0u8..16,
        backend_sel in 0usize..3,
    ) {
        let (qm, input) = small_qmodel();
        let backend = match backend_sel {
            0 => Backend::Sonic,
            1 => Backend::Tails(TailsConfig::default()),
            _ => Backend::Tiled(4),
        };
        let (expected, ops) = fault_free_reference(&qm, &input, &msp(), &backend);
        let mut probe = Device::new(msp(), PowerSystem::continuous());
        let pm = sonic_tails::sonic::deploy(&mut probe, &qm).unwrap();
        let words = control_words(&pm);
        let wi = ((word_frac * words.len() as f64) as usize).min(words.len() - 1);
        let (name, w) = &words[wi];
        let t_flip = ((flip_frac * ops as f64) as u64).min(ops - 1);
        let t_bo = ((bo_frac * ops as f64) as u64).min(ops - 1);
        let plan = [
            (t_bo, FaultKind::Brownout),
            (t_flip, FaultKind::BitFlip { addr: w.addr(), bit }),
        ];
        let out = classify_faults(&qm, &input, &msp(), &backend, &plan, &expected);
        prop_assert!(
            !matches!(out, CorruptionOutcome::SilentWrong | CorruptionOutcome::Wedged),
            "{}.bit{} flip @#{} with brown-out @#{} under {}: {:?}",
            name, bit, t_flip, t_bo, backend.label(), out
        );
    }
}
