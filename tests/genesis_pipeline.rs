//! Integration test: GENESIS end to end on a miniature network — sweep,
//! Pareto, feasibility, choice, deployment of the chosen configuration.

use dnn::train::TrainConfig;
use rand::SeedableRng;
use sonic_tails::dnn;
use sonic_tails::genesis::imp::WILDLIFE;
use sonic_tails::genesis::search::{choose, sweep, EvalContext, SearchSpace};
use sonic_tails::mcu::{CostTable, DeviceSpec, PowerSystem};
use sonic_tails::sonic::exec::{run_inference, Backend};

#[test]
fn genesis_chooses_a_deployable_configuration() {
    let data = dnn::train::toy_blobs(40, 3, 20, 21);
    let (train, test) = data.split(0.8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let base = dnn::model::Model::new(vec![
        dnn::layers::Layer::dense(20, 32, &mut rng),
        dnn::layers::Layer::relu(),
        dnn::layers::Layer::dense(32, 3, &mut rng),
    ]);
    let costs = CostTable::msp430fr5994();
    let ctx = EvalContext {
        train: &train,
        test: &test,
        retrain: TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
        fram_budget_words: 125_000,
        costs: &costs,
        interesting_class: 0,
        app: WILDLIFE,
    };
    let space = SearchSpace {
        conv_seps: vec![None],
        conv_densities: vec![1.0],
        fc_ranks: vec![None, Some(8)],
        fc_densities: vec![1.0, 0.2],
    };
    let results = sweep(&base, &space, &ctx);
    assert!(
        results.iter().any(|r| r.pareto),
        "frontier must be non-empty"
    );
    let chosen = choose(&results).expect("a feasible configuration exists");
    assert!(chosen.feasible);

    // The chosen configuration actually runs on the device, intermittently.
    let mut model = chosen.model.clone();
    let calib: Vec<dnn::tensor::Tensor> = (0..4).map(|i| train.input(i)).collect();
    let qm = dnn::quant::quantize(&mut model, &[20], &calib);
    let input = qm.quantize_input(&test.input(0));
    let out = run_inference(
        &qm,
        &input,
        &DeviceSpec::msp430fr5994(),
        PowerSystem::cap_100uf(),
        &Backend::Sonic,
    );
    assert!(out.completed);
    assert_eq!(out.output.len(), 3);
}
