//! Property tests for lockstep divergence draining: a [`DeviceBatch`]
//! whose lanes carry arbitrary per-lane [`FaultPlan`]s (brown-out +
//! bit-flip mixes), mismatched power systems, and staggered buffer
//! drains must be bit-equal *lane-for-lane* to stepping N lone devices
//! through the identical sequence — funded counts, charge, op counters,
//! trace epochs, and the FRAM image itself (so a corrupted lane's
//! flipped words match its solo twin bit-for-bit), including lanes that
//! brown out and lanes whose supply is dead and can never reboot.
//!
//! This is the contract that lets the fleet engine batch shards without
//! auditing fault semantics: the planner may only short-circuit lanes it
//! can prove uniform, and everything else drains through the scalar
//! [`Device::consume_bundle`] path unchanged.

use proptest::prelude::*;
use sonic_tails::mcu::{
    Device, DeviceBatch, DeviceSpec, FaultKind, FaultPlan, HarvestProfile, Op, OpBundle, Phase,
    PowerSystem,
};

/// Words in the per-lane FRAM scratch buffer bit-flips aim at.
const FRAM_WORDS: u32 = 4;

#[derive(Clone, Debug)]
enum Supply {
    /// Never browns out on its own; only injected faults diverge it.
    Continuous,
    /// Harvested capacitor, pre-drained by `drain` FxpMul ops so lanes
    /// enter the loop at staggered charges (full / partial / browned out).
    Harvested { drain: u64 },
    /// Harvested capacitor under a 0 W profile: the first brown-out is
    /// permanent and every reboot must report `SupplyDead`.
    Dead,
}

#[derive(Clone, Debug)]
enum Fault {
    Brownout,
    BitFlip { word: u32, bit: u8 },
}

#[derive(Clone, Debug)]
struct LanePlan {
    supply: Supply,
    /// (charged-op target, fault) pairs for this lane's [`FaultPlan`].
    faults: Vec<(u64, Fault)>,
}

fn fault() -> impl Strategy<Value = (u64, Fault)> {
    (
        1u64..4000,
        prop_oneof![
            Just(Fault::Brownout),
            (0u32..FRAM_WORDS, 0u8..16).prop_map(|(word, bit)| Fault::BitFlip { word, bit }),
        ],
    )
}

fn lane_plan() -> impl Strategy<Value = LanePlan> {
    (
        prop_oneof![
            Just(Supply::Continuous),
            (0u64..60_000).prop_map(|drain| Supply::Harvested { drain }),
            Just(Supply::Dead),
        ],
        prop::collection::vec(fault(), 0..3),
    )
        .prop_map(|(supply, faults)| LanePlan { supply, faults })
}

/// Builds one device for `plan` — used verbatim for both the batch lane
/// and its solo twin, so any state they end up with is reached through
/// the same op sequence.
fn mk_device(plan: &LanePlan, lane: usize) -> Device {
    let power = match plan.supply {
        Supply::Continuous => PowerSystem::continuous(),
        Supply::Harvested { .. } => PowerSystem::cap_100uf(),
        Supply::Dead => PowerSystem::harvested_with(100e-6, HarvestProfile::Constant(0.0)),
    };
    let mut d = Device::new(DeviceSpec::tiny(), power);
    let buf = d.fram_alloc(FRAM_WORDS).unwrap();
    for i in 0..FRAM_WORDS {
        let v = fxp::Q15::from_raw((lane as i16 + 1).wrapping_mul(0x111 * (i as i16 + 1)));
        d.write(buf, i, v).unwrap();
    }
    if !plan.faults.is_empty() {
        let fp = FaultPlan::faults(plan.faults.iter().map(|(at, f)| {
            let kind = match f {
                Fault::Brownout => FaultKind::Brownout,
                Fault::BitFlip { word, bit } => FaultKind::BitFlip {
                    addr: buf.addr(*word),
                    bit: *bit,
                },
            };
            (*at, kind)
        }));
        d.arm_faults(&fp);
    }
    if let Supply::Harvested { drain } = plan.supply {
        let _ = d.consume_n(Op::FxpMul, drain);
    }
    d
}

fn body() -> OpBundle {
    let mut b = OpBundle::new();
    b.push_n(Op::FramRead, Phase::Kernel, 2);
    b.push(Op::FxpMul, Phase::Kernel);
    b.push(Op::FramWrite, Phase::Kernel);
    b.push(Op::Incr, Phase::Control);
    b
}

/// The stateful backend's MAC-element shape: every activation read pays
/// a tag/parity verify `Alu`, and the element finish packs the embedded
/// word with another `Alu` before the write.
fn stateful_mac_body() -> OpBundle {
    let mut b = OpBundle::new();
    b.push(Op::FramRead, Phase::Kernel);
    b.push(Op::Alu, Phase::Kernel); // verify tag/parity
    b.push(Op::FramRead, Phase::Kernel); // weight
    b.push(Op::FxpMul, Phase::Kernel);
    b.push(Op::FxpAdd, Phase::Kernel);
    b.push(Op::Alu, Phase::Kernel); // embed pack
    b.push(Op::FramWrite, Phase::Kernel);
    b
}

/// The stateful backend's reboot-seek probe: a control-phase tag check
/// per binary-search step.
fn stateful_probe_body() -> OpBundle {
    let mut b = OpBundle::new();
    b.push(Op::Alu, Phase::Control);
    b.push(Op::FramRead, Phase::Control);
    b.push(Op::Alu, Phase::Control);
    b.push(Op::Branch, Phase::Control);
    b
}

fn bundle_for(shape: usize) -> OpBundle {
    match shape {
        0 => body(),
        1 => stateful_mac_body(),
        _ => stateful_probe_body(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: every observable of every lane — bundle
    /// results, reboot results (`Ok` vs `SupplyDead`), charge, op
    /// counters, pending faults, trace epoch, and the raw FRAM image —
    /// matches a lone device stepped identically.
    #[test]
    fn faulted_batch_is_bit_equal_to_solo_devices(
        plans in prop::collection::vec(lane_plan(), 2..6),
        steps in 5usize..30,
        shape in 0usize..3,
    ) {
        let mut batch = DeviceBatch::new(
            plans.iter().enumerate().map(|(i, p)| mk_device(p, i)).collect(),
        );
        let mut solo: Vec<Device> =
            plans.iter().enumerate().map(|(i, p)| mk_device(p, i)).collect();
        let b = bundle_for(shape);
        for step in 0..steps {
            let iters = 40 + (step as u64 % 7) * 9;
            let got = batch.consume_bundle_lanes(&b, iters);
            for (i, s) in solo.iter_mut().enumerate() {
                let want = s.consume_bundle(&b, iters);
                prop_assert!(
                    got[i] == want,
                    "lane {} step {}: {:?} != {:?}", i, step, got[i], want
                );
                // A lane that browned out (injected or organic) reboots
                // on both sides; dead-supply lanes must keep reporting
                // SupplyDead in lockstep with their twin.
                if !batch.lane(i).is_on() {
                    prop_assert!(!s.is_on(), "lane {} on-state skew", i);
                    let br = batch.lane_mut(i).reboot();
                    let sr = s.reboot();
                    prop_assert!(br == sr, "lane {} reboot: {:?} != {:?}", i, br, sr);
                }
            }
        }
        for (i, s) in solo.iter().enumerate() {
            let lane = batch.lane(i);
            prop_assert!(lane.charge_pj() == s.charge_pj(), "lane {} charge", i);
            prop_assert!(lane.ops_consumed() == s.ops_consumed(), "lane {} ops", i);
            prop_assert!(lane.is_on() == s.is_on(), "lane {} on", i);
            prop_assert!(
                lane.pending_faults() == s.pending_faults(),
                "lane {} armed faults", i
            );
            // Bit-flipped (corrupted) lanes: the image — flipped words
            // included — is bit-identical to the solo run's.
            prop_assert!(lane.fram_image() == s.fram_image(), "lane {} image", i);
            prop_assert!(
                lane.trace().epoch_report() == s.trace().epoch_report(),
                "lane {} trace", i
            );
        }
    }
}
