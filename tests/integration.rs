//! Cross-crate integration tests: the full pipeline from training through
//! GENESIS compression to intermittent on-device inference.

use rand::SeedableRng;
use sonic_tails::dnn::layers::Layer;
use sonic_tails::dnn::model::Model;
use sonic_tails::dnn::quant::quantize;
use sonic_tails::dnn::tensor::Tensor;
use sonic_tails::dnn::train::{toy_blobs, train, TrainConfig};
use sonic_tails::genesis::imp::WILDLIFE;
use sonic_tails::genesis::search::{apply_knobs, PlanKnobs};
use sonic_tails::mcu::{DeviceSpec, PowerSystem};
use sonic_tails::sonic::exec::{run_inference, Backend, TailsConfig};

/// A trained, pruned, quantized model plus one test input.
fn pipeline_model() -> (sonic_tails::dnn::quant::QModel, Vec<fxp::Q15>, usize) {
    let data = toy_blobs(40, 3, 27, 7);
    let (train_set, test_set) = data.split(0.8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let base = Model::new(vec![
        Layer::conv2d(3, 3, 1, 3, &mut rng), // treat the 27-dim input as [3,1,9]
        Layer::relu(),
        Layer::flatten(),
        Layer::dense(3 * 7, 16, &mut rng),
        Layer::relu(),
        Layer::dense(16, 3, &mut rng),
    ]);
    let knobs = PlanKnobs {
        conv_sep: None,
        conv_density: 1.0,
        fc_rank: None,
        fc_density: 0.3, // force a sparse FC layer into the pipeline
    };
    let mut compressed = apply_knobs(&base, &knobs);
    // Re-train on reshaped data.
    let reshaped = reshape_dataset(&train_set);
    train(
        &mut compressed,
        &reshaped,
        &TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        },
    );
    let calib: Vec<Tensor> = (0..4).map(|i| reshaped.input(i)).collect();
    let qm = quantize(&mut compressed, &[3, 1, 9], &calib);
    let test_reshaped = reshape_dataset(&test_set);
    let input = qm.quantize_input(&test_reshaped.input(0));
    (qm, input, test_reshaped.label(0))
}

fn reshape_dataset(d: &sonic_tails::dnn::data::Dataset) -> sonic_tails::dnn::data::Dataset {
    let inputs: Vec<Vec<f32>> = (0..d.len()).map(|i| d.input(i).into_vec()).collect();
    let labels: Vec<usize> = (0..d.len()).map(|i| d.label(i)).collect();
    sonic_tails::dnn::data::Dataset::new(vec![3, 1, 9], inputs, labels, d.num_classes())
}

#[test]
fn full_pipeline_all_backends_agree_on_continuous_power() {
    let (qm, input, _) = pipeline_model();
    let spec = DeviceSpec::msp430fr5994();
    let host = qm.forward_host(&input);
    let host_class = fxp::vecops::argmax(&host);
    for b in Backend::paper_suite() {
        let out = run_inference(&qm, &input, &spec, PowerSystem::continuous(), &b);
        assert!(out.completed, "{b} failed");
        assert_eq!(out.class, host_class, "{b} classification mismatch");
    }
}

#[test]
fn full_pipeline_intermittent_equals_continuous_for_protected_backends() {
    let (qm, input, _) = pipeline_model();
    let spec = DeviceSpec::msp430fr5994();
    for b in [
        Backend::Sonic,
        Backend::Tiled(8),
        Backend::Tiled(32),
        Backend::Tails(TailsConfig::default()),
    ] {
        let cont = run_inference(&qm, &input, &spec, PowerSystem::continuous(), &b);
        // Sweep several buffer sizes: different failure points every time.
        for cap in [4e-6, 10e-6, 60e-6] {
            let inter = run_inference(&qm, &input, &spec, PowerSystem::harvested(cap), &b);
            assert!(inter.completed, "{b} @ {cap}F must complete");
            assert_eq!(
                inter.output, cont.output,
                "{b} @ {cap}F: intermittent result differs from continuous"
            );
        }
    }
}

#[test]
fn imp_model_prefers_efficient_inference() {
    // The analytical model and the measured energies compose: cheaper
    // inference yields strictly better IMpJ at equal accuracy.
    let a = WILDLIFE.inference_impj(26.0, 0.95, 0.95);
    let b = WILDLIFE.inference_impj(198.0, 0.95, 0.95);
    assert!(a > b);
}

#[test]
fn energy_ordering_matches_paper_shape() {
    let (qm, input, _) = pipeline_model();
    let spec = DeviceSpec::msp430fr5994();
    let energy =
        |b: &Backend| run_inference(&qm, &input, &spec, PowerSystem::continuous(), b).energy_mj();
    let base = energy(&Backend::Baseline);
    let sonic = energy(&Backend::Sonic);
    let tile8 = energy(&Backend::Tiled(8));
    let tile128 = energy(&Backend::Tiled(128));
    assert!(sonic > base, "SONIC pays an intermittence tax over base");
    // On this tiny model the planes are smaller than the large tile, so
    // Tile-8 vs Tile-128 ordering is not meaningful here (the full-size
    // ordering is exercised by the fig09 bench); both must cost well more
    // than SONIC, which is the paper's structural claim.
    assert!(
        tile8 > sonic && tile128 > sonic,
        "tiling must cost more than SONIC"
    );
}
