//! Experiment-service integration tests, end to end through the facade
//! crate: a sharded study killed mid-run resumes from its sealed shard
//! records and lands on the exact digest of an uninterrupted run.

use rand::SeedableRng;
use sonic_tails::dnn::layers::Layer;
use sonic_tails::dnn::model::Model;
use sonic_tails::dnn::quant::{quantize, QModel};
use sonic_tails::dnn::tensor::Tensor;
use sonic_tails::mcu::{DeviceSpec, PowerSystem};
use sonic_tails::sonic::exec::Backend;
use sonic_tails::sonic::experiment::{run_experiment, ExperimentConfig};
use sonic_tails::sonic::fleet::{fleet_digest, plan_shards, run_fleet, FleetInput, FleetJob};

fn tiny_model() -> (QModel, Vec<Vec<fxp::Q15>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut model = Model::new(vec![
        Layer::dense(16, 12, &mut rng),
        Layer::relu(),
        Layer::dense(12, 3, &mut rng),
    ]);
    let shape = [16usize];
    let calib: Vec<Tensor> = (0..3)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let inputs = (0..4)
        .map(|_| qm.quantize_input(&Tensor::uniform(shape.to_vec(), 0.9, &mut rng)))
        .collect();
    (qm, inputs)
}

/// Two replica devices per cell, so every cell splits into two shards
/// and the mid-run kill lands between a cell's shards, not only between
/// cells.
fn job<'a>(qm: &'a QModel, inputs: &[Vec<fxp::Q15>]) -> FleetJob<'a> {
    FleetJob {
        qmodel: qm,
        spec: DeviceSpec::msp430fr5994(),
        inputs: inputs
            .iter()
            .map(|i| FleetInput {
                input: i.clone(),
                label: Some(1),
            })
            .collect(),
        backends: vec![Backend::Sonic, Backend::Tiled(8)],
        powers: vec![PowerSystem::continuous(), PowerSystem::harvested(6e-6)],
        replicas: 2,
        faults: None,
    }
}

fn config(name: &str) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(name);
    cfg.root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("exp-it-tests");
    cfg
}

/// A fault-armed experiment streams its forensics to disk and replays
/// them bit-identically: records carry the SDC verdict and guard
/// detections, the on-disk digest matches the in-RAM fleet engine, and
/// a pure-replay invocation reproduces it without re-running anything.
#[test]
fn fault_armed_experiment_round_trips_forensics() {
    use sonic_tails::mcu::{Device, FaultKind, FaultPlan};
    use sonic_tails::sonic::spec::unguarded_activation_addr;

    let (qm, inputs) = tiny_model();
    let mut j = job(&qm, &inputs);
    let mut probe = Device::new(DeviceSpec::msp430fr5994(), PowerSystem::continuous());
    let pm = sonic_tails::sonic::deploy(&mut probe, &qm).expect("probe deploy");
    // An unguarded input-word flip early in every run: completed runs
    // diverge from the fault-free reference and must be recorded as SDC.
    j.faults = Some(FaultPlan::faults([(
        1,
        FaultKind::BitFlip {
            addr: unguarded_activation_addr(&pm),
            bit: 14,
        },
    )]));

    let armed = run_experiment(&j, &config("it-faults")).expect("armed run");
    assert!(armed.complete);
    assert_eq!(
        armed.digest,
        fleet_digest(&run_fleet(&j)),
        "streamed-to-disk digest == in-RAM digest under injected faults"
    );
    let records: Vec<_> = armed.cells.iter().flat_map(|c| &c.records).collect();
    assert!(
        records.iter().any(|r| r.sdc == Some(true)),
        "an unguarded flip must produce at least one recorded SDC"
    );

    let mut replayed = config("it-faults");
    replayed.resume = true;
    let replay = run_experiment(&j, &replayed).expect("replay run");
    assert_eq!(replay.executed_shards, 0, "everything loads from disk");
    assert_eq!(replay.digest, armed.digest);
    for (a, b) in armed.cells.iter().zip(&replay.cells) {
        assert_eq!(a.records, b.records, "forensics survive the disk codec");
    }
}

/// A shard file torn at *any* byte boundary — a crash mid-write, a
/// truncated copy, a half-flushed page — must never poison a resume:
/// the loader rejects the torn file, exactly that shard re-runs, and
/// the digest lands bit-identical to the uninterrupted run.
#[test]
fn torn_shard_files_self_heal_on_resume_at_every_byte_boundary() {
    let (qm, inputs) = tiny_model();
    let j = job(&qm, &inputs);
    let total_shards = plan_shards(&j).len();

    let clean = run_experiment(&j, &config("it-torn")).expect("clean run");
    assert!(clean.complete);

    // Tear the continuous-power SONIC shard: its runs are the cheapest
    // to re-execute a few hundred times over.
    let victim = config("it-torn")
        .root
        .join("it-torn")
        .join("shards")
        .join("p000-b000-s0000.runs");
    let sealed = std::fs::read(&victim).expect("sealed shard bytes");
    assert!(sealed.len() > 64, "shard file suspiciously small");

    let mut resumed = config("it-torn");
    resumed.resume = true;
    for cut in 0..sealed.len() {
        std::fs::write(&victim, &sealed[..cut]).expect("truncate shard");
        let healed = run_experiment(&j, &resumed).expect("resume over torn shard");
        assert!(healed.complete, "cut at byte {cut}");
        assert_eq!(
            healed.digest, clean.digest,
            "digest diverged after tear at byte {cut}"
        );
        // Only the final newline is droppable without breaking the
        // seal; every shorter prefix must force a re-run of exactly
        // the torn shard.
        if cut + 1 < sealed.len() {
            assert_eq!(healed.executed_shards, 1, "cut at byte {cut}");
            assert_eq!(healed.loaded_shards, total_shards - 1, "cut at byte {cut}");
            // The re-run re-seals the file bit-identically, so the
            // next iteration tears the same bytes.
            assert_eq!(
                std::fs::read(&victim).expect("re-sealed shard"),
                sealed,
                "re-sealed shard bytes diverged after tear at byte {cut}"
            );
        } else {
            // Dropping only the trailing newline leaves every line
            // intact: the seal still verifies and nothing re-runs.
            assert!(healed.executed_shards <= 1, "cut at byte {cut}");
        }
    }
}

#[test]
fn killed_experiment_resumes_bit_identical_to_an_uninterrupted_run() {
    let (qm, inputs) = tiny_model();
    let j = job(&qm, &inputs);
    let total_shards = plan_shards(&j).len();
    assert_eq!(total_shards, 8, "2 backends x 2 powers x 2 replicas");

    // The reference: one uninterrupted run, and the in-RAM fleet engine.
    let clean = run_experiment(&j, &config("it-clean")).expect("clean run");
    assert!(clean.complete);
    assert_eq!(clean.executed_shards, total_shards);
    assert_eq!(
        clean.digest,
        fleet_digest(&run_fleet(&j)),
        "record-replayed digest == in-RAM digest"
    );

    // Kill after 3 of 8 shards…
    let mut killed = config("it-resume");
    killed.shard_budget = Some(3);
    let partial = run_experiment(&j, &killed).expect("killed run");
    assert!(!partial.complete);
    assert_eq!(partial.executed_shards, 3);
    assert_eq!(partial.pending_shards, total_shards - 3);

    // …then resume: only the remaining shards run, the first 3 load from
    // their sealed record files, and the digest is bit-identical.
    let mut resumed = config("it-resume");
    resumed.resume = true;
    let finished = run_experiment(&j, &resumed).expect("resumed run");
    assert!(finished.complete);
    assert_eq!(finished.loaded_shards, 3);
    assert_eq!(finished.executed_shards, total_shards - 3);
    assert_eq!(
        finished.digest, clean.digest,
        "kill+resume == uninterrupted"
    );
    for (a, b) in clean.cells.iter().zip(&finished.cells) {
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.records, b.records);
    }

    // A third invocation is a pure replay: nothing left to execute.
    let replay = run_experiment(&j, &resumed).expect("replay run");
    assert_eq!(replay.executed_shards, 0);
    assert_eq!(replay.loaded_shards, total_shards);
    assert_eq!(replay.digest, clean.digest);
}
