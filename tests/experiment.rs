//! Experiment-service integration tests, end to end through the facade
//! crate: a sharded study killed mid-run resumes from its sealed shard
//! records and lands on the exact digest of an uninterrupted run.

use rand::SeedableRng;
use sonic_tails::dnn::layers::Layer;
use sonic_tails::dnn::model::Model;
use sonic_tails::dnn::quant::{quantize, QModel};
use sonic_tails::dnn::tensor::Tensor;
use sonic_tails::mcu::{DeviceSpec, PowerSystem};
use sonic_tails::sonic::exec::Backend;
use sonic_tails::sonic::experiment::{run_experiment, ExperimentConfig};
use sonic_tails::sonic::fleet::{fleet_digest, plan_shards, run_fleet, FleetInput, FleetJob};

fn tiny_model() -> (QModel, Vec<Vec<fxp::Q15>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut model = Model::new(vec![
        Layer::dense(16, 12, &mut rng),
        Layer::relu(),
        Layer::dense(12, 3, &mut rng),
    ]);
    let shape = [16usize];
    let calib: Vec<Tensor> = (0..3)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let inputs = (0..4)
        .map(|_| qm.quantize_input(&Tensor::uniform(shape.to_vec(), 0.9, &mut rng)))
        .collect();
    (qm, inputs)
}

/// Two replica devices per cell, so every cell splits into two shards
/// and the mid-run kill lands between a cell's shards, not only between
/// cells.
fn job<'a>(qm: &'a QModel, inputs: &[Vec<fxp::Q15>]) -> FleetJob<'a> {
    FleetJob {
        qmodel: qm,
        spec: DeviceSpec::msp430fr5994(),
        inputs: inputs
            .iter()
            .map(|i| FleetInput {
                input: i.clone(),
                label: Some(1),
            })
            .collect(),
        backends: vec![Backend::Sonic, Backend::Tiled(8)],
        powers: vec![PowerSystem::continuous(), PowerSystem::harvested(6e-6)],
        replicas: 2,
    }
}

fn config(name: &str) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(name);
    cfg.root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("exp-it-tests");
    cfg
}

#[test]
fn killed_experiment_resumes_bit_identical_to_an_uninterrupted_run() {
    let (qm, inputs) = tiny_model();
    let j = job(&qm, &inputs);
    let total_shards = plan_shards(&j).len();
    assert_eq!(total_shards, 8, "2 backends x 2 powers x 2 replicas");

    // The reference: one uninterrupted run, and the in-RAM fleet engine.
    let clean = run_experiment(&j, &config("it-clean")).expect("clean run");
    assert!(clean.complete);
    assert_eq!(clean.executed_shards, total_shards);
    assert_eq!(
        clean.digest,
        fleet_digest(&run_fleet(&j)),
        "record-replayed digest == in-RAM digest"
    );

    // Kill after 3 of 8 shards…
    let mut killed = config("it-resume");
    killed.shard_budget = Some(3);
    let partial = run_experiment(&j, &killed).expect("killed run");
    assert!(!partial.complete);
    assert_eq!(partial.executed_shards, 3);
    assert_eq!(partial.pending_shards, total_shards - 3);

    // …then resume: only the remaining shards run, the first 3 load from
    // their sealed record files, and the digest is bit-identical.
    let mut resumed = config("it-resume");
    resumed.resume = true;
    let finished = run_experiment(&j, &resumed).expect("resumed run");
    assert!(finished.complete);
    assert_eq!(finished.loaded_shards, 3);
    assert_eq!(finished.executed_shards, total_shards - 3);
    assert_eq!(
        finished.digest, clean.digest,
        "kill+resume == uninterrupted"
    );
    for (a, b) in clean.cells.iter().zip(&finished.cells) {
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.records, b.records);
    }

    // A third invocation is a pure replay: nothing left to execute.
    let replay = run_experiment(&j, &resumed).expect("replay run");
    assert_eq!(replay.executed_shards, 0);
    assert_eq!(replay.loaded_shards, total_shards);
    assert_eq!(replay.digest, clean.digest);
}
