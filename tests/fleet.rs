//! Fleet-engine integration tests: determinism, per-run trace epochs,
//! and time-varying harvest power, end to end through the facade crate.

use rand::SeedableRng;
use sonic_tails::dnn::layers::Layer;
use sonic_tails::dnn::model::Model;
use sonic_tails::dnn::quant::{quantize, QModel};
use sonic_tails::dnn::tensor::Tensor;
use sonic_tails::mcu::{Device, DeviceSpec, FaultKind, FaultPlan, HarvestProfile, PowerSystem};
use sonic_tails::sonic::exec::Backend;
use sonic_tails::sonic::fleet::{fleet_digest, run_fleet, run_fleet_serial, FleetInput, FleetJob};
use sonic_tails::sonic::spec::{fault_free_reference, unguarded_activation_addr};

fn tiny_model() -> (QModel, Vec<Vec<fxp::Q15>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    let mut model = Model::new(vec![
        Layer::dense(24, 20, &mut rng),
        Layer::relu(),
        Layer::dense(20, 4, &mut rng),
    ]);
    let shape = [24usize];
    let calib: Vec<Tensor> = (0..3)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let inputs = (0..4)
        .map(|_| qm.quantize_input(&Tensor::uniform(shape.to_vec(), 0.9, &mut rng)))
        .collect();
    (qm, inputs)
}

fn job<'a>(qm: &'a QModel, inputs: &[Vec<fxp::Q15>]) -> FleetJob<'a> {
    FleetJob {
        qmodel: qm,
        spec: DeviceSpec::msp430fr5994(),
        inputs: inputs
            .iter()
            .map(|i| FleetInput {
                input: i.clone(),
                label: Some(1),
            })
            .collect(),
        backends: vec![Backend::Sonic, Backend::Tiled(8)],
        powers: vec![
            PowerSystem::continuous(),
            PowerSystem::harvested(6e-6),
            PowerSystem::harvested_with(
                6e-6,
                HarvestProfile::Square {
                    high_w: 150e-6,
                    low_w: 0.0,
                    // Dark windows of 10 ms every 20 ms: recharges (~5 ms
                    // each at this buffer) keep crossing occlusions.
                    period_s: 0.02,
                    duty: 0.5,
                },
            ),
        ],
        replicas: 1,
        faults: None,
    }
}

#[test]
fn fleet_results_are_bit_identical_serial_vs_parallel_and_across_runs() {
    let (qm, inputs) = tiny_model();
    let j = job(&qm, &inputs);
    let a = run_fleet(&j);
    let b = run_fleet_serial(&j);
    let c = run_fleet(&j);
    assert_eq!(fleet_digest(&a), fleet_digest(&b), "parallel == serial");
    assert_eq!(fleet_digest(&a), fleet_digest(&c), "repeatable");
    // Every continuous-power run completed with a classification.
    for cell in a.iter().filter(|c| c.power == "Cont") {
        for run in &cell.runs {
            assert!(run.outcome.completed);
            assert!(run.outcome.class.is_some());
        }
    }
}

/// Absolute digest of the `job` fleet, recorded from the scalar
/// accounting path. Regenerate (after an *intentional* accounting
/// change) with `GOLDEN_PRINT=1 cargo test --test fleet -- --nocapture`.
const FLEET_GOLDEN_DIGEST: u64 = 0x5f9baa1a835b9b4a;

#[test]
fn fleet_digest_matches_scalar_golden() {
    let (qm, inputs) = tiny_model();
    let d = fleet_digest(&run_fleet(&job(&qm, &inputs)));
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("    fleet golden digest: {d:#018x}");
        return;
    }
    assert_eq!(
        d, FLEET_GOLDEN_DIGEST,
        "fleet digest diverged from the scalar accounting path"
    );
}

/// Fault-armed fleets surface their failure-mode accounting: a flip on
/// a *guarded* control word is detected (and never counted as silent
/// data corruption), while the same-schedule flip on an *unguarded*
/// activation word completes with a diverged output and lands in the
/// SDC column. Fault injection stays deterministic: two runs of the
/// same armed job produce identical digests.
#[test]
fn fault_armed_fleet_surfaces_detection_and_sdc() {
    let (qm, inputs) = tiny_model();
    let spec = DeviceSpec::msp430fr5994();
    let mut probe = Device::new(spec.clone(), PowerSystem::continuous());
    let pm = sonic_tails::sonic::deploy(&mut probe, &qm).unwrap();
    let backend = Backend::Sonic;
    let (_, ops) = fault_free_reference(&qm, &inputs[0], &spec, &backend);

    let armed_job = |plan: FaultPlan| FleetJob {
        qmodel: &qm,
        spec: spec.clone(),
        inputs: inputs
            .iter()
            .map(|i| FleetInput {
                input: i.clone(),
                label: Some(1),
            })
            .collect(),
        backends: vec![backend],
        powers: vec![PowerSystem::continuous()],
        replicas: 1,
        faults: Some(plan),
    };

    // A high bit of the first layer's loop counter, flipped mid-layer,
    // then a brown-out one op later: recovery re-reads the counter from
    // FRAM, and the guards must notice before it steers the restart.
    // (Without the reboot the live register shadows the word and the
    // next checkpoint store silently overwrites the flip.)
    let guarded = armed_job(FaultPlan::faults([
        (
            ops / 4,
            FaultKind::BitFlip {
                addr: pm.layers[0].idx.addr(),
                bit: 13,
            },
        ),
        (ops / 4 + 1, FaultKind::Brownout),
    ]));
    let cells = run_fleet(&guarded);
    assert_eq!(fleet_digest(&cells), fleet_digest(&run_fleet(&guarded)));
    let s = cells[0].summarize(&spec);
    assert!(
        s.corruption_detected > 0,
        "guarded control-word flips must be detected: {s:?}"
    );
    assert_eq!(s.sdc, 0, "a guarded flip must never be silent: {s:?}");

    // The same schedule against an unguarded activation word: the run
    // completes, the answer is wrong, and the SDC column says so.
    let silent = armed_job(FaultPlan::faults([(
        1,
        FaultKind::BitFlip {
            addr: unguarded_activation_addr(&pm),
            bit: 14,
        },
    )]));
    let s = run_fleet(&silent)[0].summarize(&spec);
    assert!(
        s.sdc > 0,
        "an unguarded input-word flip must surface as SDC: {s:?}"
    );
    assert_eq!(s.corruption_detected, 0, "nothing guards that word: {s:?}");
}

#[test]
fn occluded_power_runs_complete_but_wait_out_the_dark_windows() {
    let (qm, inputs) = tiny_model();
    let j = job(&qm, &inputs);
    let cells = run_fleet(&j);
    let spec = DeviceSpec::msp430fr5994();
    let constant = cells
        .iter()
        .find(|c| c.power == "6uF" && c.backend == "SONIC")
        .expect("constant harvested cell");
    let occluded = cells
        .iter()
        .find(|c| c.power == "6uF~sq" && c.backend == "SONIC")
        .expect("occluded cell");
    let sum = |cell: &sonic_tails::sonic::fleet::FleetCell| -> f64 {
        cell.runs
            .iter()
            .filter(|r| r.outcome.completed)
            .map(|r| r.outcome.trace.dead_secs)
            .sum()
    };
    let (s_const, s_occ) = (sum(constant), sum(occluded));
    assert!(
        occluded.runs.iter().any(|r| r.outcome.completed),
        "occluded cells must still make progress"
    );
    assert!(
        s_occ > s_const,
        "half-duty occlusion must add dead time: {s_occ} vs {s_const}"
    );
    // Identical compute either way: live time per completed run matches.
    for (a, b) in constant.runs.iter().zip(&occluded.runs) {
        if a.outcome.completed && b.outcome.completed {
            assert_eq!(a.outcome.trace.live_cycles, b.outcome.trace.live_cycles);
            assert_eq!(a.outcome.output, b.outcome.output);
        }
    }
    let summary = occluded.summarize(&spec);
    assert_eq!(summary.runs, 4);
}
