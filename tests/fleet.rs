//! Fleet-engine integration tests: determinism, per-run trace epochs,
//! and time-varying harvest power, end to end through the facade crate.

use rand::SeedableRng;
use sonic_tails::dnn::layers::Layer;
use sonic_tails::dnn::model::Model;
use sonic_tails::dnn::quant::{quantize, QModel};
use sonic_tails::dnn::tensor::Tensor;
use sonic_tails::mcu::{DeviceSpec, HarvestProfile, PowerSystem};
use sonic_tails::sonic::exec::Backend;
use sonic_tails::sonic::fleet::{fleet_digest, run_fleet, run_fleet_serial, FleetInput, FleetJob};

fn tiny_model() -> (QModel, Vec<Vec<fxp::Q15>>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    let mut model = Model::new(vec![
        Layer::dense(24, 20, &mut rng),
        Layer::relu(),
        Layer::dense(20, 4, &mut rng),
    ]);
    let shape = [24usize];
    let calib: Vec<Tensor> = (0..3)
        .map(|_| Tensor::uniform(shape.to_vec(), 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &shape, &calib);
    let inputs = (0..4)
        .map(|_| qm.quantize_input(&Tensor::uniform(shape.to_vec(), 0.9, &mut rng)))
        .collect();
    (qm, inputs)
}

fn job<'a>(qm: &'a QModel, inputs: &[Vec<fxp::Q15>]) -> FleetJob<'a> {
    FleetJob {
        qmodel: qm,
        spec: DeviceSpec::msp430fr5994(),
        inputs: inputs
            .iter()
            .map(|i| FleetInput {
                input: i.clone(),
                label: Some(1),
            })
            .collect(),
        backends: vec![Backend::Sonic, Backend::Tiled(8)],
        powers: vec![
            PowerSystem::continuous(),
            PowerSystem::harvested(6e-6),
            PowerSystem::harvested_with(
                6e-6,
                HarvestProfile::Square {
                    high_w: 150e-6,
                    low_w: 0.0,
                    // Dark windows of 10 ms every 20 ms: recharges (~5 ms
                    // each at this buffer) keep crossing occlusions.
                    period_s: 0.02,
                    duty: 0.5,
                },
            ),
        ],
        replicas: 1,
    }
}

#[test]
fn fleet_results_are_bit_identical_serial_vs_parallel_and_across_runs() {
    let (qm, inputs) = tiny_model();
    let j = job(&qm, &inputs);
    let a = run_fleet(&j);
    let b = run_fleet_serial(&j);
    let c = run_fleet(&j);
    assert_eq!(fleet_digest(&a), fleet_digest(&b), "parallel == serial");
    assert_eq!(fleet_digest(&a), fleet_digest(&c), "repeatable");
    // Every continuous-power run completed with a classification.
    for cell in a.iter().filter(|c| c.power == "Cont") {
        for run in &cell.runs {
            assert!(run.outcome.completed);
            assert!(run.outcome.class.is_some());
        }
    }
}

/// Absolute digest of the `job` fleet, recorded from the scalar
/// accounting path. Regenerate (after an *intentional* accounting
/// change) with `GOLDEN_PRINT=1 cargo test --test fleet -- --nocapture`.
const FLEET_GOLDEN_DIGEST: u64 = 0x5f9baa1a835b9b4a;

#[test]
fn fleet_digest_matches_scalar_golden() {
    let (qm, inputs) = tiny_model();
    let d = fleet_digest(&run_fleet(&job(&qm, &inputs)));
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("    fleet golden digest: {d:#018x}");
        return;
    }
    assert_eq!(
        d, FLEET_GOLDEN_DIGEST,
        "fleet digest diverged from the scalar accounting path"
    );
}

#[test]
fn occluded_power_runs_complete_but_wait_out_the_dark_windows() {
    let (qm, inputs) = tiny_model();
    let j = job(&qm, &inputs);
    let cells = run_fleet(&j);
    let spec = DeviceSpec::msp430fr5994();
    let constant = cells
        .iter()
        .find(|c| c.power == "6uF" && c.backend == "SONIC")
        .expect("constant harvested cell");
    let occluded = cells
        .iter()
        .find(|c| c.power == "6uF~sq" && c.backend == "SONIC")
        .expect("occluded cell");
    let sum = |cell: &sonic_tails::sonic::fleet::FleetCell| -> f64 {
        cell.runs
            .iter()
            .filter(|r| r.outcome.completed)
            .map(|r| r.outcome.trace.dead_secs)
            .sum()
    };
    let (s_const, s_occ) = (sum(constant), sum(occluded));
    assert!(
        occluded.runs.iter().any(|r| r.outcome.completed),
        "occluded cells must still make progress"
    );
    assert!(
        s_occ > s_const,
        "half-duty occlusion must add dead time: {s_occ} vs {s_const}"
    );
    // Identical compute either way: live time per completed run matches.
    for (a, b) in constant.runs.iter().zip(&occluded.runs) {
        if a.outcome.completed && b.outcome.completed {
            assert_eq!(a.outcome.trace.live_cycles, b.outcome.trace.live_cycles);
            assert_eq!(a.outcome.output, b.outcome.output);
        }
    }
    let summary = occluded.summarize(&spec);
    assert_eq!(summary.runs, 4);
}
