//! Integration test: the deployment feasibility constraint is real — a
//! model larger than FRAM is rejected by deploy, which is exactly the
//! boundary GENESIS's feasibility filter enforces.

use rand::SeedableRng;
use sonic_tails::dnn::layers::Layer;
use sonic_tails::dnn::model::Model;
use sonic_tails::dnn::quant::quantize;
use sonic_tails::dnn::tensor::Tensor;
use sonic_tails::mcu::{Device, DeviceSpec, PowerSystem};
use sonic_tails::sonic::deploy::deploy;

#[test]
fn oversized_model_fails_to_deploy() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    // ~90 K dense weights in one layer, plus double buffers: exceeds the
    // 128 K-word FRAM once activations and a second big layer are added.
    let mut model = Model::new(vec![
        Layer::dense(600, 120, &mut rng),
        Layer::relu(),
        Layer::dense(120, 600, &mut rng),
        Layer::relu(),
        Layer::dense(600, 120, &mut rng),
    ]);
    let calib: Vec<Tensor> = (0..2)
        .map(|_| Tensor::uniform(vec![600], 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &[600], &calib);
    // Artificially shrink the device to make the point cheaply.
    let mut spec = DeviceSpec::msp430fr5994();
    spec.fram_words = 10_000;
    let mut dev = Device::new(spec, PowerSystem::continuous());
    let err = deploy(&mut dev, &qm).unwrap_err();
    assert!(err.fram, "should run out of FRAM: {err}");
}

#[test]
fn feasible_model_deploys_within_budget() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let mut model = Model::new(vec![Layer::dense(64, 10, &mut rng)]);
    let calib: Vec<Tensor> = (0..2)
        .map(|_| Tensor::uniform(vec![64], 0.9, &mut rng))
        .collect();
    let qm = quantize(&mut model, &[64], &calib);
    let mut dev = Device::new(DeviceSpec::msp430fr5994(), PowerSystem::continuous());
    let dm = deploy(&mut dev, &qm).expect("should fit");
    assert!(dev.fram_available() > 0);
    assert_eq!(dm.output_len, 10);
    assert_eq!(dm.input_len, 64);
}
