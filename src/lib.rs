//! SONIC & TAILS — a full-system reproduction of *Intelligence Beyond the
//! Edge: Inference on Intermittent Embedded Systems* (ASPLOS'19) in Rust.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`fxp`]: Q1.15 fixed-point arithmetic.
//! - [`mcu`]: the MSP430FR5994-like energy-metered device model.
//! - [`intermittent`]: the task-based intermittent runtime substrate
//!   (Alpaca-style redo logging, scheduler, non-termination detection).
//! - [`dnn`]: tensors, layers, training, quantization, synthetic datasets.
//! - [`genesis`]: automatic compression balancing accuracy vs energy
//!   (pruning, separation, Pareto search, the IMpJ model).
//! - [`sonic`]: the SONIC & TAILS inference runtimes plus the baseline and
//!   Tile-N comparators.
//! - [`models`]: the three paper networks, trained and cached.
//!
//! # Quickstart
//!
//! ```no_run
//! use sonic_tails::models::{trained, Network};
//! use sonic_tails::sonic::exec::{run_inference, Backend};
//! use sonic_tails::mcu::{DeviceSpec, PowerSystem};
//!
//! let net = trained(Network::Har);
//! let input = net.qmodel.quantize_input(&net.test.input(0));
//! let out = run_inference(
//!     &net.qmodel,
//!     &input,
//!     &DeviceSpec::msp430fr5994(),
//!     PowerSystem::cap_100uf(),
//!     &Backend::Sonic,
//! );
//! println!("class {:?} after {} power failures", out.class, out.trace.reboots);
//! ```

#![forbid(unsafe_code)]

pub use dnn;
pub use fxp;
pub use genesis;
pub use intermittent;
pub use mcu;
pub use models;
pub use sonic;
